"""Command-line interface: run the paper's experiments from a shell.

``repro-diagnostics <command>`` (or ``python -m repro ...``) exposes the
headline flows:

- ``tables`` — print Tables I, II and III from the data layer,
- ``panel`` — run the Fig. 4 multi-target panel end to end,
- ``fleet`` — run many concurrent panel assays through the shared
  batched engine scheduler, streaming results as they complete,
- ``explore`` — design-space exploration for the Sec. III panel (or a
  JSON panel spec),
- ``calibrate <target>`` — measured calibration of one reference sensor,
- ``run <spec.json>`` — execute any :mod:`repro.api` spec file,
- ``serve`` — stand up the diagnostics service (:mod:`repro.service`):
  a persistent asyncio HTTP/JSON server with submit/status/stream/
  cancel endpoints, a fair priority job queue, per-client rate
  limiting + usage accounting, and per-dispatcher persistent worker
  pools over a shared warm store,
- ``cache <store-dir>`` — inspect a content-addressed run store
  (``--clear`` empties it; the ``stats`` sub-subcommand prints
  hit/miss/eviction counters and footprint, ``gc --max-count N
  --max-bytes B`` evicts least-recently-used records; both take
  ``--json``),
- ``lint [paths]`` — statically check the source tree against the
  platform's invariants (:mod:`repro.devtools`): determinism,
  error-taxonomy, lock-discipline, spec-schema and provenance rules,
  with ``--json`` reports, ``--rule`` filtering and a committed
  baseline.  Exit status: 0 clean, 1 findings, 2 usage error.

Every measurement subcommand builds a declarative :mod:`repro.api` spec
and executes it through :func:`repro.api.run` /
:func:`repro.api.iter_results`, so the CLI, spec files, and library
callers all go through the same front door and every run prints its
provenance (spec hash, schema version, seed).  ``fleet`` and ``run``
select an execution backend with ``--backend process --workers N``
(bit-identical results, sharded across worker processes) and memoise
through ``--store DIR`` — memoisation is *per job*: a repeated run is
a whole-run cache hit served without touching the engine, and a
partially warm fleet/sweep pulls its warm jobs from the store and
simulates only the misses (runs against a store print their hit/miss
delta).  ``--max-attempts N`` / ``--timeout-s T`` opt into supervised
execution (crashed, hung or failing workers are retried under the
budget) and ``--on-error partial`` degrades gracefully — exhausted
jobs print as ``FAIL`` lines instead of aborting the fleet.  Numeric
arguments are validated by argparse up front; any
:class:`~repro.errors.ReproError` from deeper layers — including an
:class:`~repro.errors.ExecutionError` from a run that exhausted its
retry budget — exits with status 1 and a one-line message.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import devtools
from repro.errors import ReproError
from repro.io.tables import render_table
from repro.units import si_to_um_conc, v_to_mv

__all__ = ["main", "build_parser"]


def _int_at_least(minimum: int):
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected an integer, got {text!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"must be >= {minimum}, got {value}")
        return value

    return parse


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0.0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _lint_epilog() -> str:
    lines = ["'lint' statically enforces the platform invariants:"]
    lines += [f"  {rule.rule_id}  {rule.summary}"
              for rule in devtools.default_rules()]
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diagnostics",
        description=("Reproduction of 'An Integrated Platform for Advanced "
                     "Diagnostics' (DATE 2011)"),
        epilog=_lint_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print the paper's Tables I, II and III")

    panel = sub.add_parser("panel", help="run the Fig. 4 multi-target panel")
    panel.add_argument("--seed", type=int, default=2011)
    panel.add_argument("--sequential", action="store_true",
                       help="per-WE reference path instead of the fused "
                            "cross-electrode engine batch (bit-identical)")

    fleet = sub.add_parser(
        "fleet", help="run many concurrent panel assays through the "
                      "shared batched engine scheduler")
    fleet.add_argument("--cells", type=_int_at_least(1), default=8,
                       help="number of concurrent assay cells (>= 1)")
    fleet.add_argument("--seed", type=int, default=2011)
    fleet.add_argument("--ca-dwell", type=_positive_float, default=30.0,
                       help="chronoamperometric dwell per WE, seconds (> 0)")
    fleet.add_argument("--sequential", action="store_true",
                       help="run the fleet as per-cell sequential panels "
                            "(reference path, same results)")
    _add_execution_arguments(fleet)

    explore_cmd = sub.add_parser(
        "explore", help="design-space exploration for a panel spec")
    explore_cmd.add_argument("--spec", type=str, default=None,
                             help="JSON panel spec (default: Sec. III panel)")

    calibrate = sub.add_parser(
        "calibrate", help="measured calibration of one reference sensor")
    calibrate.add_argument("target", type=str)
    calibrate.add_argument("--points", type=_int_at_least(2), default=8,
                           help="ladder concentrations (>= 2)")

    selectivity = sub.add_parser(
        "selectivity", help="cross-response matrix of the Fig. 4 panel")
    selectivity.add_argument("--potential", type=float, default=550.0,
                             help="operating potential, mV vs Ag/AgCl")

    run_cmd = sub.add_parser(
        "run", help="execute any repro.api spec file (assay, fleet, "
                    "sweep, calibration, platform, explore)")
    run_cmd.add_argument("spec", type=str, help="path to a JSON run spec")
    run_cmd.add_argument("--json", type=str, default=None, metavar="PATH",
                         help="also export the run record "
                              "(provenance + result summary) as JSON")
    _add_execution_arguments(run_cmd)

    serve = sub.add_parser(
        "serve", help="run the diagnostics service: a persistent async "
                      "HTTP/JSON server with a priority job queue and "
                      "per-dispatcher worker pools over the repro.api "
                      "pipeline")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=_int_at_least(0), default=0,
                       help="bind port (0: let the OS pick; the bound "
                            "port is printed on startup)")
    serve.add_argument("--backend",
                       choices=("inline", "process", "distributed"),
                       default="inline",
                       help="execution backend for every submitted run "
                            "(the server's choice is authoritative)")
    serve.add_argument("--workers", type=_int_at_least(1), default=None,
                       help="worker processes per dispatcher pool for "
                            "--backend process, or shards per run for "
                            "--backend distributed (default: one per core)")
    serve.add_argument("--queue", type=str, default=None, metavar="DIR",
                       help="shared queue directory for --backend "
                            "distributed (attach `repro worker` processes "
                            "to execute the service's runs)")
    serve.add_argument("--dispatchers", type=_int_at_least(1), default=2,
                       help="parallel dispatcher threads, each owning a "
                            "persistent executor")
    serve.add_argument("--store", type=str, default=None, metavar="DIR",
                       help="shared warm run store (usage accounting "
                            "persists next to it)")
    serve.add_argument("--rate-capacity", type=_positive_float,
                       default=None, metavar="N",
                       help="per-client token bucket: burst submissions "
                            "(default: unlimited)")
    serve.add_argument("--rate-refill", type=_positive_float, default=1.0,
                       metavar="R",
                       help="per-client sustained submissions/sec "
                            "(with --rate-capacity)")
    serve.add_argument("--max-attempts", type=_int_at_least(1),
                       default=None, metavar="N",
                       help="supervised execution for every run: retry "
                            "each job up to N times")
    serve.add_argument("--timeout-s", type=_positive_float, default=None,
                       metavar="T",
                       help="supervised execution: per-shard hang "
                            "timeout in seconds")
    serve.add_argument("--on-error", choices=("raise", "partial"),
                       default="raise")

    worker = sub.add_parser(
        "worker", help="attach a claim-and-execute worker process to a "
                       "distributed queue: claims published shards "
                       "atomically, consults the shared run store before "
                       "solving, and writes results back for the "
                       "submitter to re-merge")
    worker.add_argument("--queue", type=str, required=True, metavar="DIR",
                        help="the queue directory fleets are submitted to "
                             "(created if missing)")
    worker.add_argument("--store", type=str, default=None, metavar="DIR",
                        help="shared run store to consult and warm "
                             "(default: <queue>/store)")
    worker.add_argument("--max-shards", type=_int_at_least(1),
                        default=None, metavar="N",
                        help="exit after executing N primary shards "
                             "(default: unbounded)")
    worker.add_argument("--idle-exit-s", type=_positive_float,
                        default=None, metavar="T",
                        help="exit after T seconds with nothing claimable "
                             "(default: loop forever)")

    cache = sub.add_parser(
        "cache", help="inspect, garbage-collect or clear a "
                      "content-addressed run store")
    cache.add_argument("store", type=str,
                       help="run store directory (as passed to --store)")
    cache.add_argument("--clear", action="store_true",
                       help="delete every stored record")
    cache_sub = cache.add_subparsers(dest="cache_command")
    stats_cmd = cache_sub.add_parser(
        "stats", help="hit/miss/eviction counters and store footprint")
    stats_cmd.add_argument("--json", action="store_true",
                           help="machine-readable output")
    gc_cmd = cache_sub.add_parser(
        "gc", help="evict least-recently-used records down to the "
                   "given limits")
    gc_cmd.add_argument("--max-count", type=_int_at_least(0), default=None,
                        help="keep at most N records (>= 0)")
    gc_cmd.add_argument("--max-bytes", type=_int_at_least(0), default=None,
                        help="keep at most B stored bytes (>= 0)")
    gc_cmd.add_argument("--json", action="store_true",
                        help="machine-readable output")

    lint = sub.add_parser(
        "lint", help="statically check sources against the platform "
                     "invariants (REP001-REP006)",
        epilog=_lint_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--rule", action="append", metavar="REP00x",
                      choices=sorted(rule.rule_id for rule in
                                     devtools.default_rules()),
                      help="run only this rule (repeatable)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report (the CI artifact)")
    lint.add_argument("--baseline", type=str, default=None, metavar="FILE",
                      help="baseline file of grandfathered findings "
                           "(default: devtools/lint_baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline to cover exactly the "
                           "current findings, then exit 0")
    lint.add_argument("--write-schema", action="store_true",
                      help="refresh devtools/schema_snapshot.json from "
                           "the current spec surface before checking")
    return parser


def _add_execution_arguments(command) -> None:
    command.add_argument("--backend",
                         choices=("inline", "process", "distributed"),
                         default=None,
                         help="execution backend (default: the spec's "
                              "execution block; results are bit-identical "
                              "either way)")
    command.add_argument("--workers", type=_int_at_least(1), default=None,
                         help="worker processes for --backend process, or "
                              "shards to publish for --backend distributed "
                              "(default: one per CPU core)")
    command.add_argument("--queue", type=str, default=None, metavar="DIR",
                         help="shared queue directory for --backend "
                              "distributed; attach workers with "
                              "`repro worker --queue DIR`")
    command.add_argument("--prefetch", action="store_true",
                         help="distributed sweeps only: let idle workers "
                              "speculatively warm the sweep's neighbouring "
                              "grid points in the shared store")
    command.add_argument("--store", type=str, default=None, metavar="DIR",
                         help="content-addressed run store: reuse a "
                              "stored record on spec-hash hit, persist "
                              "the record otherwise")
    command.add_argument("--screening", action="store_true",
                         help="opt into the coarse-grid screening profile "
                              "(faster, lower fidelity; flagged in "
                              "provenance and stored under its own "
                              "content address)")
    command.add_argument("--max-attempts", type=_int_at_least(1),
                         default=None, metavar="N",
                         help="supervised execution: retry each job up "
                              "to N times on worker crash, hang or "
                              "transient error (results stay "
                              "bit-identical to a fault-free run)")
    command.add_argument("--timeout-s", type=_positive_float, default=None,
                         metavar="T",
                         help="supervised execution: treat a shard "
                              "running longer than T seconds as hung "
                              "and retry it under the attempt budget")
    command.add_argument("--on-error", choices=("raise", "partial"),
                         default=None,
                         help="what to do when a job exhausts its "
                              "retries: abort the run (raise, the "
                              "default) or keep the survivors and "
                              "report the failures (partial)")


def _build_resilience(args):
    """``(retry, on_error)`` from --max-attempts/--timeout-s/--on-error.

    ``(None, None)`` — the common case — defers entirely to the spec's
    execution block; the run is unsupervised unless the spec says
    otherwise.
    """
    from repro import api

    retry = None
    if args.max_attempts is not None or args.timeout_s is not None:
        retry = api.RetryPolicy(
            max_attempts=(args.max_attempts
                          if args.max_attempts is not None else 3),
            timeout_s=args.timeout_s)
    return retry, args.on_error


def _build_execution(args):
    """``(backend, retry, on_error)`` for the api front door.

    With an explicit ``--backend`` the resilience flags configure the
    constructed Executor directly (an already-built instance takes no
    overrides); without one they ride as ``run()``/``iter_results()``
    arguments over the spec's execution block.
    """
    from repro import api

    if args.workers is not None and args.backend not in ("process",
                                                         "distributed"):
        raise SystemExit("error: --workers needs --backend process "
                         "or distributed")
    if args.queue is not None and args.backend != "distributed":
        raise SystemExit("error: --queue needs --backend distributed")
    if args.prefetch and args.backend != "distributed":
        raise SystemExit("error: --prefetch needs --backend distributed")
    if getattr(args, "sequential", False) and args.backend is not None:
        raise SystemExit("error: --sequential is the per-cell reference "
                         "path; it cannot run on --backend")
    retry, on_error = _build_resilience(args)
    if args.backend is None:
        return None, retry, on_error
    kwargs = {"retry": retry}
    if on_error is not None:
        kwargs["on_error"] = on_error
    if args.backend == "inline":
        return api.InlineExecutor(**kwargs), None, None
    if args.backend == "distributed":
        if args.queue is None:
            raise SystemExit("error: --backend distributed needs --queue")
        return api.DistributedExecutor(
            queue=args.queue, workers=args.workers,
            prefetch=args.prefetch, **kwargs), None, None
    return api.ProcessExecutor(workers=args.workers, **kwargs), None, None


def _print_provenance(record) -> None:
    seed = "-" if record.seed is None else record.seed
    cached = " [cached]" if record.cached else ""
    print(f"[{record.kind}] spec {record.spec_hash[:12]} "
          f"(schema v{record.schema_version}, seed {seed}, "
          f"{record.wall_time_s:.2f} s){cached}")
    stats = record.store_stats
    if stats is not None:
        quarantined = (f", {stats.quarantined} quarantined"
                       if stats.quarantined else "")
        print(f"store: {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.evictions} eviction(s){quarantined}; "
              f"{stats.records} record(s), {_human_bytes(stats.bytes)}")
    _print_resilience(getattr(record, "resilience", None))


def _print_resilience(resilience) -> None:
    if resilience is not None and resilience.faults:
        print(f"resilience: {resilience.retries} retr(ies), "
              f"{resilience.worker_crashes} crash(es), "
              f"{resilience.worker_hangs} hang(s), "
              f"{resilience.engine_errors} engine error(s), "
              f"{resilience.failed_jobs} failed job(s)")


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "kB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return (f"{value:.0f} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024.0
    raise AssertionError("unreachable")


def _cmd_tables() -> int:
    from repro.data import TABLE_I, TABLE_II, TABLE_III
    rows1 = [[r.display_name, r.target, f"{v_to_mv(r.applied_potential):+.0f}",
              r.reference] for r in TABLE_I]
    print(render_table(
        ["Oxidase", "Target", "Applied mV (vs Ag/AgCl)", "Ref"],
        rows1, title="Table I - oxidases"))
    rows2 = [[r.isoform, r.target, f"{v_to_mv(r.reduction_potential):+.0f}",
              r.reference] for r in TABLE_II]
    print(render_table(
        ["CYP", "Target drug", "Reduction mV (vs Ag/AgCl)", "Ref"],
        rows2, title="Table II - cytochromes"))
    rows3 = [[r.target, r.probe, f"{r.sensitivity:g}",
              (f"{si_to_um_conc(r.lod):.0f}" if r.lod is not None else "-"),
              f"{r.linear_range[0]:g} - {r.linear_range[1]:g}"]
             for r in TABLE_III]
    print(render_table(
        ["Target", "Probe", "S uA/(mM cm^2)", "LOD uM", "Linear mM"],
        rows3, title="Table III - performance"))
    return 0


def _print_panel_record(record) -> None:
    from repro.data import PAPER_PANEL_MID_CONCENTRATIONS

    result = record.result
    rows = []
    for target in PAPER_PANEL_MID_CONCENTRATIONS:
        if target in result.readouts:
            readout = result.readouts[target]
            rows.append([target, readout.we_name, readout.method,
                         f"{readout.signal * 1e9:.1f}"])
        else:
            rows.append([target, "-", "NOT RECOVERED", "-"])
    print(render_table(["Target", "WE", "Method", "Signal nA"], rows,
                       title="Fig. 4 panel readouts"))
    print(f"assay time: {result.assay_time:.0f} s")


def _cmd_panel(seed: int, sequential: bool = False) -> int:
    from repro import api

    spec = api.AssaySpec(
        name="fig4-panel", seed=seed, chain=api.ChainSpec(seed=seed),
        protocol=api.PanelProtocolSpec(batch_electrodes=not sequential))
    record = api.run(spec)
    _print_provenance(record)
    _print_panel_record(record)
    return 0


def _cmd_fleet(n_cells: int, seed: int, ca_dwell: float,
               sequential: bool, backend=None,
               store: str | None = None,
               screening: bool = False,
               retry=None, on_error=None) -> int:
    import time

    from repro import api
    from repro.data import PAPER_PANEL_MID_CONCENTRATIONS

    n_targets = len(PAPER_PANEL_MID_CONCENTRATIONS)
    backend_name = getattr(backend, "name", "inline")
    # The backend is an execution detail, not part of the workload: keep
    # the spec canonical (default execution block) so the same fleet
    # hashes — and store-hits — identically under every --backend.
    spec = api.FleetSpec.homogeneous(
        cells=n_cells, seed=seed, ca_dwell=ca_dwell,
        batch_electrodes=not sequential)
    if screening:
        import dataclasses

        # Stamp the flag into the spec itself (not just the run call) so
        # the hash printed below is the one the store files under.
        spec = dataclasses.replace(spec, assays=tuple(
            dataclasses.replace(assay, screening=True)
            for assay in spec.assays))
    start = time.perf_counter()
    print(f"fleet spec {api.spec_hash(spec)[:12]} "
          f"(schema v{api.SCHEMA_VERSION}, {n_cells} assays"
          f"{', screening' if screening else ''})")

    def report(record) -> None:
        if record.failed:
            print(f"  FAIL {record.job_name}: {record.error_type} "
                  f"after {record.attempts} attempt(s)")
            return
        recovered = sum(1 for t in PAPER_PANEL_MID_CONCENTRATIONS
                        if t in record.result.readouts)
        print(f"  done {record.job_name}: {recovered}/{n_targets} "
              f"targets, assay {record.result.assay_time:.0f} s")

    n_failed = 0
    if store is not None:
        # The memoised path: whole-run records by spec hash, per-job
        # records by JobKey — a partially warm fleet simulates only its
        # missing jobs.
        record = api.run(spec, backend=backend, store=api.RunStore(store),
                         retry=retry, on_error=on_error)
        _print_provenance(record)
        if record.cached:
            for job in record.to_dict()["result"]["jobs"]:
                print(f"  hit  {job['job_name']}: "
                      f"{len(job['readouts'])}/{n_targets} targets, "
                      f"assay {job['assay_time_s']:.0f} s")
            mode = "run store cache hit"
        else:
            n_hits = sum(1 for rec in record.records if rec.cached)
            n_failed = record.n_failed
            for rec in record.records:
                if rec.failed:
                    report(rec)
                    continue
                recovered = sum(1 for t in PAPER_PANEL_MID_CONCENTRATIONS
                                if t in rec.result.readouts)
                print(f"  {'hit ' if rec.cached else 'done'} "
                      f"{rec.job_name}: {recovered}/{n_targets} "
                      f"targets, assay {rec.result.assay_time:.0f} s")
            mode = (f"{backend_name} backend, stored "
                    f"({n_hits}/{len(record.records)} jobs from store)")
    elif sequential:
        for assay in spec.assays:
            report(api.run(assay))
        mode = "sequential per-cell panels"
    else:
        stats = None
        resilience = None
        for record in api.iter_results(spec, backend=backend,
                                       retry=retry, on_error=on_error):
            report(record)
            n_failed += 1 if record.failed else 0
            stats = record.engine if record.engine is not None else stats
            resilience = (getattr(record, "resilience", None)
                          or resilience)
        _print_resilience(resilience)
        mode = (f"{backend_name} backend "
                f"({stats.n_fused_dwells} dwell systems in "
                f"{stats.n_dwell_groups} group(s))" if stats is not None
                else f"{backend_name} backend")
    elapsed = time.perf_counter() - start
    print(f"mode      : {mode}")
    print(f"wall time : {elapsed:.2f} s")
    print(f"throughput: {n_cells / elapsed:.2f} assays/sec")
    if n_failed:
        print(f"degraded  : {n_failed}/{n_cells} job(s) failed "
              f"(--on-error partial)")
    return 0


def _cmd_explore(spec_path: str | None) -> int:
    from repro import api
    from repro.core import exploration_report
    from repro.core.spec import read_payload

    panel = read_payload(spec_path) if spec_path else None
    record = api.run(api.ExploreSpec(panel=panel))
    _print_provenance(record)
    print(exploration_report(record.result))
    return 0 if record.result.n_feasible else 1


def _print_calibration_record(record) -> None:
    from repro.data import performance_record
    from repro.units import sensitivity_to_paper

    paper = performance_record(record.target)
    curve = record.curve
    rows = [[f"{p.concentration:.3g}", f"{p.signal * 1e6:.4g}"]
            for p in curve.points]
    print(render_table(["C mM", "I uA"], rows,
                       title=f"calibration of {record.target}"))
    lo_p, hi_p = paper.linear_range
    sens = curve.sensitivity(c_low=lo_p, c_high=hi_p) / record.we_area
    print(f"sensitivity : {sensitivity_to_paper(sens):.2f} uA/(mM cm^2) "
          f"(paper {paper.sensitivity:g})")
    print(f"LOD         : {si_to_um_conc(curve.limit_of_detection()):.0f} uM "
          + (f"(paper {si_to_um_conc(paper.lod):.0f})"
             if paper.lod is not None else ""))
    low, high = curve.linear_range()
    print(f"linear range: {low:.2g} - {high:.2g} mM "
          f"(paper {paper.linear_range[0]:g} - {paper.linear_range[1]:g})")


def _cmd_calibrate(target: str, n_points: int) -> int:
    from repro import api

    record = api.run(api.CalibrationSpec(target=target, points=n_points))
    _print_provenance(record)
    _print_calibration_record(record)
    return 0


def _cmd_selectivity(potential_mv: float) -> int:
    from repro.analysis.selectivity import cross_response_matrix
    from repro.data import PAPER_PANEL_TARGETS, paper_panel_cell
    from repro.units import mv_to_v

    cell = paper_panel_cell({t: 0.0 for t in PAPER_PANEL_TARGETS})
    matrix = cross_response_matrix(cell, mv_to_v(potential_mv),
                                   species=PAPER_PANEL_TARGETS,
                                   concentration=1.0)
    print(f"operating potential: {potential_mv:+.0f} mV vs Ag/AgCl")
    print(matrix.render())
    return 0


def _cmd_run(spec_path: str, json_out: str | None, backend=None,
             store: str | None = None, screening: bool = False,
             retry=None, on_error=None) -> int:
    from repro import api
    from repro.core import exploration_report
    from repro.io.export import run_record_to_json

    record = api.run(api.load_spec(spec_path), backend=backend,
                     store=api.RunStore(store) if store else None,
                     screening=True if screening else None,
                     retry=retry, on_error=on_error)
    _print_provenance(record)
    status = 0
    if record.cached:
        print(f"cache hit: stored record served from the run store "
              f"(original run took {record.wall_time_s:.2f} s)")
    # StoredRunRecord (a whole-run summary) matches none of the arms
    # below; rehydrated CachedAssayRecords are live assay records and
    # still render their panel table.
    if isinstance(record, api.AssayRunRecord):
        _print_panel_record(record)
    elif isinstance(record, api.FleetRunRecord):
        rows = [([rec.job_name, "FAIL", f"({rec.attempts} attempts)"]
                 if rec.failed else
                 [rec.job_name, len(rec.result.readouts),
                  f"{rec.result.assay_time:.0f}"])
                for rec in record.records]
        print(render_table(["Job", "Targets", "Assay s"], rows,
                           title=f"{len(record)}-assay fleet"))
        if record.n_failed:
            print(f"degraded: {record.n_failed}/{len(record)} job(s) "
                  f"failed (--on-error partial)")
    elif isinstance(record, api.CalibrationRunRecord):
        _print_calibration_record(record)
    elif isinstance(record, api.PlatformRunRecord):
        print(record.summary)
        for target, readout in record.result.readouts.items():
            print(f"  {target}: {readout.signal * 1e9:.2f} nA "
                  f"({readout.method})")
    elif isinstance(record, api.ExploreRunRecord):
        print(exploration_report(record.result))
        status = 0 if record.result.n_feasible else 1
    if json_out:
        path = run_record_to_json(record, json_out)
        print(f"record written to {path}")
    return status


def _cmd_serve(args) -> int:
    from repro import api
    from repro.service import DiagnosticsServer, ServeSpec

    retry = None
    if args.max_attempts is not None or args.timeout_s is not None:
        retry = api.RetryPolicy(
            max_attempts=(args.max_attempts
                          if args.max_attempts is not None else 3),
            timeout_s=args.timeout_s)
    spec = ServeSpec(
        host=args.host, port=args.port, backend=args.backend,
        workers=args.workers, dispatchers=args.dispatchers,
        store=args.store, queue=args.queue,
        rate_capacity=(args.rate_capacity
                       if args.rate_capacity is not None else 0.0),
        rate_refill_per_s=args.rate_refill,
        retry=retry, on_error=args.on_error)
    server = DiagnosticsServer(spec)
    port = server.start()
    # Machine-parseable announcement (CI greps it for the bound port);
    # flush so a piped parent sees it before the first request.
    print(f"repro serve: listening on http://{spec.host}:{port} "
          f"({spec.backend} backend, {spec.dispatchers} dispatcher(s)"
          f"{', store ' + spec.store if spec.store else ''})",
          flush=True)
    try:
        import threading

        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    finally:
        server.stop()
    return 0


def _cmd_worker(args) -> int:
    import os

    from repro.api.distributed import (
        default_store_root,
        ensure_queue,
        run_worker,
    )

    root = ensure_queue(args.queue)
    store = args.store if args.store is not None \
        else str(default_store_root(root))
    # Machine-parseable announcement (tests and CI grep it); flush so a
    # piped parent sees it before the first claim.
    print(f"repro worker: ready queue={root} store={store} "
          f"pid={os.getpid()}", flush=True)
    try:
        done = run_worker(root, store=store, max_shards=args.max_shards,
                          idle_exit_s=args.idle_exit_s)
    except KeyboardInterrupt:
        print("repro worker: shutting down", flush=True)
        return 0
    print(f"repro worker: done shards={done['shards']} "
          f"jobs={done['jobs']} prefetched={done['prefetched']}",
          flush=True)
    return 0


def _cmd_cache(args) -> int:
    from repro import api

    store = api.RunStore(args.store)
    command = getattr(args, "cache_command", None)
    if command == "stats":
        return _cmd_cache_stats(store, args.json)
    if command == "gc":
        return _cmd_cache_gc(store, args.max_count, args.max_bytes,
                             args.json)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} record(s) from {store.root}")
        return 0
    rows = []
    for record in store.records():
        seed = record.provenance().get("seed")
        rows.append([record.spec_hash[:12], record.kind,
                     "-" if seed is None else str(seed),
                     f"{record.wall_time_s:.2f}"])
    print(render_table(["Spec hash", "Kind", "Seed", "Wall s"], rows,
                       title=f"run store {store.root}"))
    print(f"{len(rows)} record(s)")
    return 0


def _cmd_cache_stats(store, as_json: bool) -> int:
    import json as json_module

    stats = store.stats()
    if as_json:
        payload = {"root": str(store.root), **stats.to_dict(),
                   "hit_rate": stats.hit_rate}
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"run store {store.root}")
    print(f"records   : {stats.records}")
    print(f"bytes     : {stats.bytes} ({_human_bytes(stats.bytes)})")
    print(f"hits      : {stats.hits}")
    print(f"misses    : {stats.misses}")
    print(f"evictions : {stats.evictions}")
    print(f"quarantined: {stats.quarantined}")
    print(f"lock waits: {stats.lock_waits}")
    print(f"hit rate  : {100.0 * stats.hit_rate:.1f}%")
    return 0


def _cmd_cache_gc(store, max_count: int | None, max_bytes: int | None,
                  as_json: bool) -> int:
    import json as json_module

    if max_count is None and max_bytes is None:
        raise SystemExit("error: cache gc needs --max-count and/or "
                         "--max-bytes")
    evicted, freed = store.gc(max_count=max_count, max_bytes=max_bytes)
    stats = store.stats()
    if as_json:
        payload = {"root": str(store.root), "evicted": evicted,
                   "bytes_freed": freed, **stats.to_dict()}
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"evicted {evicted} record(s), freed {_human_bytes(freed)}; "
          f"{stats.records} record(s), {_human_bytes(stats.bytes)} remain")
    return 0


def _cmd_lint(args) -> int:
    rules = devtools.default_rules()
    if args.rule:
        wanted = set(args.rule)
        rules = [rule for rule in rules if rule.rule_id in wanted]
    baseline_path = args.baseline or devtools.DEFAULT_BASELINE
    engine = devtools.LintEngine(
        rules, root=Path.cwd(),
        baseline=devtools.Baseline.load(baseline_path))
    try:
        if args.write_schema:
            sources = devtools.collect_sources(args.paths, Path.cwd())
            devtools.write_snapshot(devtools.DEFAULT_SNAPSHOT, sources)
            print(f"wrote {devtools.DEFAULT_SNAPSHOT}", file=sys.stderr)
        result = engine.run(args.paths)
    except FileNotFoundError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        devtools.Baseline.write(baseline_path, result.findings)
        print(f"wrote {baseline_path} with "
              f"{len(result.findings)} entr"
              f"{'y' if len(result.findings) == 1 else 'ies'}",
              file=sys.stderr)
        return 0
    print(devtools.render_json(result) if args.json
          else devtools.render_text(result))
    return 0 if result.clean else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "tables":
            return _cmd_tables()
        if args.command == "panel":
            return _cmd_panel(args.seed, args.sequential)
        if args.command == "fleet":
            backend, retry, on_error = _build_execution(args)
            return _cmd_fleet(args.cells, args.seed, args.ca_dwell,
                              args.sequential, backend=backend,
                              store=args.store, screening=args.screening,
                              retry=retry, on_error=on_error)
        if args.command == "explore":
            return _cmd_explore(args.spec)
        if args.command == "calibrate":
            return _cmd_calibrate(args.target, args.points)
        if args.command == "selectivity":
            return _cmd_selectivity(args.potential)
        if args.command == "run":
            backend, retry, on_error = _build_execution(args)
            return _cmd_run(args.spec, args.json,
                            backend=backend, store=args.store,
                            screening=args.screening,
                            retry=retry, on_error=on_error)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
