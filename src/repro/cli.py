"""Command-line interface: run the paper's experiments from a shell.

``repro-diagnostics <command>`` (or ``python -m repro ...``) exposes the
headline flows:

- ``tables`` — print Tables I, II and III from the data layer,
- ``panel`` — run the Fig. 4 multi-target panel end to end,
- ``fleet`` — run many concurrent panel assays through the shared
  batched engine scheduler,
- ``explore`` — design-space exploration for the Sec. III panel (or a
  JSON panel spec),
- ``calibrate <target>`` — measured calibration of one reference sensor.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.io.tables import render_table
from repro.units import si_to_um_conc, v_to_mv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diagnostics",
        description=("Reproduction of 'An Integrated Platform for Advanced "
                     "Diagnostics' (DATE 2011)"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print the paper's Tables I, II and III")

    panel = sub.add_parser("panel", help="run the Fig. 4 multi-target panel")
    panel.add_argument("--seed", type=int, default=2011)
    panel.add_argument("--sequential", action="store_true",
                       help="per-WE reference path instead of the fused "
                            "cross-electrode engine batch (bit-identical)")

    fleet = sub.add_parser(
        "fleet", help="run many concurrent panel assays through the "
                      "shared batched engine scheduler")
    fleet.add_argument("--cells", type=int, default=8,
                       help="number of concurrent assay cells")
    fleet.add_argument("--seed", type=int, default=2011)
    fleet.add_argument("--ca-dwell", type=float, default=30.0,
                       help="chronoamperometric dwell per WE, seconds")
    fleet.add_argument("--sequential", action="store_true",
                       help="run the fleet as per-cell sequential panels "
                            "(reference path, same results)")

    explore_cmd = sub.add_parser(
        "explore", help="design-space exploration for a panel spec")
    explore_cmd.add_argument("--spec", type=str, default=None,
                             help="JSON panel spec (default: Sec. III panel)")

    calibrate = sub.add_parser(
        "calibrate", help="measured calibration of one reference sensor")
    calibrate.add_argument("target", type=str)
    calibrate.add_argument("--points", type=int, default=8)

    selectivity = sub.add_parser(
        "selectivity", help="cross-response matrix of the Fig. 4 panel")
    selectivity.add_argument("--potential", type=float, default=550.0,
                             help="operating potential, mV vs Ag/AgCl")
    return parser


def _cmd_tables() -> int:
    from repro.data import TABLE_I, TABLE_II, TABLE_III
    rows1 = [[r.display_name, r.target, f"{v_to_mv(r.applied_potential):+.0f}",
              r.reference] for r in TABLE_I]
    print(render_table(
        ["Oxidase", "Target", "Applied mV (vs Ag/AgCl)", "Ref"],
        rows1, title="Table I - oxidases"))
    rows2 = [[r.isoform, r.target, f"{v_to_mv(r.reduction_potential):+.0f}",
              r.reference] for r in TABLE_II]
    print(render_table(
        ["CYP", "Target drug", "Reduction mV (vs Ag/AgCl)", "Ref"],
        rows2, title="Table II - cytochromes"))
    rows3 = [[r.target, r.probe, f"{r.sensitivity:g}",
              (f"{si_to_um_conc(r.lod):.0f}" if r.lod is not None else "-"),
              f"{r.linear_range[0]:g} - {r.linear_range[1]:g}"]
             for r in TABLE_III]
    print(render_table(
        ["Target", "Probe", "S uA/(mM cm^2)", "LOD uM", "Linear mM"],
        rows3, title="Table III - performance"))
    return 0


def _cmd_panel(seed: int, sequential: bool = False) -> int:
    from repro.data import (
        PAPER_PANEL_MID_CONCENTRATIONS,
        integrated_chain,
        paper_panel_cell,
    )
    from repro.measurement import PanelProtocol

    cell = paper_panel_cell()
    chain = integrated_chain("cyp_micro", n_channels=5, seed=seed)
    print(chain.describe())
    result = PanelProtocol(batch_electrodes=not sequential).run(
        cell, chain, rng=np.random.default_rng(seed))
    rows = []
    for target in PAPER_PANEL_MID_CONCENTRATIONS:
        if target in result.readouts:
            readout = result.readouts[target]
            rows.append([target, readout.we_name, readout.method,
                         f"{readout.signal * 1e9:.1f}"])
        else:
            rows.append([target, "-", "NOT RECOVERED", "-"])
    print(render_table(["Target", "WE", "Method", "Signal nA"], rows,
                       title="Fig. 4 panel readouts"))
    print(f"assay time: {result.assay_time:.0f} s")
    return 0


def _cmd_fleet(n_cells: int, seed: int, ca_dwell: float,
               sequential: bool) -> int:
    import time

    from repro.data import (
        PAPER_PANEL_MID_CONCENTRATIONS,
        integrated_chain,
        paper_panel_cell,
    )
    from repro.engine import AssayJob, AssayScheduler
    from repro.measurement import PanelProtocol

    if n_cells < 1:
        print("--cells must be >= 1")
        return 1
    jobs = [AssayJob(cell=paper_panel_cell(),
                     chain=integrated_chain("cyp_micro", n_channels=5,
                                            seed=seed + k),
                     name=f"cell{k:02d}",
                     rng=np.random.default_rng(seed + k))
            for k in range(n_cells)]
    start = time.perf_counter()
    if sequential:
        protocol = PanelProtocol(ca_dwell=ca_dwell, batch_electrodes=False)
        results = [protocol.run(job.cell, job.chain, rng=job.rng)
                   for job in jobs]
        names = [job.name for job in jobs]
        mode = "sequential per-cell panels"
    else:
        scheduler = AssayScheduler(PanelProtocol(ca_dwell=ca_dwell))
        fleet = scheduler.run_many(jobs)
        results, names = list(fleet.results), list(fleet.names)
        mode = (f"fused scheduler ({fleet.n_fused_dwells} dwell systems in "
                f"{fleet.n_dwell_groups} group(s))")
    elapsed = time.perf_counter() - start
    rows = []
    for name, result in zip(names, results):
        recovered = sum(1 for t in PAPER_PANEL_MID_CONCENTRATIONS
                        if t in result.readouts)
        rows.append([name, f"{recovered}/{len(PAPER_PANEL_MID_CONCENTRATIONS)}",
                     f"{result.assay_time:.0f}"])
    print(render_table(["Job", "Targets recovered", "Assay s"], rows,
                       title=f"{n_cells}-cell fleet | {mode}"))
    print(f"wall time : {elapsed:.2f} s")
    print(f"throughput: {n_cells / elapsed:.2f} assays/sec")
    return 0


def _cmd_explore(spec_path: str | None) -> int:
    from repro.core import explore, exploration_report, paper_panel_spec
    from repro.core.spec import load_panel

    panel = load_panel(spec_path) if spec_path else paper_panel_spec()
    result = explore(panel)
    print(exploration_report(result))
    return 0 if result.n_feasible else 1


def _cmd_calibrate(target: str, n_points: int) -> int:
    from repro.analysis import run_calibration
    from repro.data import bench_chain, performance_record, reference_cell
    from repro.data.catalog import table1_working_electrode

    record = performance_record(target)
    if record.method != "chronoamperometry":
        print(f"{target} is CV-detected; use the T3 bench for peak-height "
              f"calibration")
        return 1
    cell = reference_cell(target)
    chain = bench_chain()
    we_name = cell.working_electrodes[0].name
    e_applied = table1_working_electrode(
        target).effective_h2o2_wave().potential_for_efficiency(0.95)

    def signal_at(c: float) -> tuple[float, float]:
        cell.chamber.set_bulk(target, c)
        true = cell.measured_current(we_name, e_applied)
        return chain.measure_constant(true, duration=5.0,
                                      we=cell.working_electrodes[0])

    lo, hi = record.linear_range
    ladder = list(np.linspace(lo, hi * 1.5, n_points))
    curve = run_calibration(signal_at, ladder)
    rows = [[f"{p.concentration:.3g}", f"{p.signal * 1e6:.4g}"]
            for p in curve.points]
    print(render_table(["C mM", "I uA"], rows,
                       title=f"calibration of {target}"))
    lo_p, hi_p = record.linear_range
    sens = curve.sensitivity(c_low=lo_p, c_high=hi_p) / (
        cell.working_electrodes[0].area)
    from repro.units import sensitivity_to_paper
    print(f"sensitivity : {sensitivity_to_paper(sens):.2f} uA/(mM cm^2) "
          f"(paper {record.sensitivity:g})")
    print(f"LOD         : {si_to_um_conc(curve.limit_of_detection()):.0f} uM "
          + (f"(paper {si_to_um_conc(record.lod):.0f})"
             if record.lod is not None else ""))
    low, high = curve.linear_range()
    print(f"linear range: {low:.2g} - {high:.2g} mM "
          f"(paper {record.linear_range[0]:g} - {record.linear_range[1]:g})")
    return 0


def _cmd_selectivity(potential_mv: float) -> int:
    from repro.analysis.selectivity import cross_response_matrix
    from repro.data import PAPER_PANEL_TARGETS, paper_panel_cell
    from repro.units import mv_to_v

    cell = paper_panel_cell({t: 0.0 for t in PAPER_PANEL_TARGETS})
    matrix = cross_response_matrix(cell, mv_to_v(potential_mv),
                                   species=PAPER_PANEL_TARGETS,
                                   concentration=1.0)
    print(f"operating potential: {potential_mv:+.0f} mV vs Ag/AgCl")
    print(matrix.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "panel":
        return _cmd_panel(args.seed, args.sequential)
    if args.command == "fleet":
        return _cmd_fleet(args.cells, args.seed, args.ca_dwell,
                          args.sequential)
    if args.command == "explore":
        return _cmd_explore(args.spec)
    if args.command == "calibrate":
        return _cmd_calibrate(args.target, args.points)
    if args.command == "selectivity":
        return _cmd_selectivity(args.potential)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
