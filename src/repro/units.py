"""Unit conventions and conversions.

The library computes in **SI units** throughout:

===============  ==========================  ==============================
Quantity         Internal unit               Convenient fact
===============  ==========================  ==============================
potential        volt (V)                    paper quotes mV
current          ampere (A)                  paper quotes uA / nA
concentration    mol/m^3                     1 mol/m^3 == 1 mM exactly
area             m^2                         paper quotes mm^2 / cm^2
length           m                           electrode radii in um
time             second (s)
scan rate        V/s                         paper quotes mV/s
sensitivity      A*m/mol (== A/(m^2*mol/m^3))  paper quotes uA/(mM*cm^2)
===============  ==========================  ==============================

The paper reports values in laboratory units (mV, uA, mM, uA/(mM*cm^2)).
Converters in this module are exact and round-trip; property tests assert
this.  All converters validate that their input is a finite real number so
unit mistakes fail loudly at the boundary instead of corrupting simulations.
"""

from __future__ import annotations

import math

from repro.errors import UnitsError

__all__ = [
    "mv_to_v",
    "v_to_mv",
    "ua_to_a",
    "a_to_ua",
    "na_to_a",
    "a_to_na",
    "mm_conc_to_si",
    "si_to_mm_conc",
    "um_conc_to_si",
    "si_to_um_conc",
    "mm2_to_m2",
    "m2_to_mm2",
    "cm2_to_m2",
    "m2_to_cm2",
    "um_to_m",
    "m_to_um",
    "mv_per_s_to_v_per_s",
    "v_per_s_to_mv_per_s",
    "sensitivity_to_si",
    "sensitivity_to_paper",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_finite",
    "ensure_fraction",
]

# Exact ratio between the paper's sensitivity unit uA/(mM*cm^2) and the SI
# unit A*m/mol: 1 uA/(mM*cm^2) = 1e-6 A / (1 mol/m^3 * 1e-4 m^2) = 1e-2 A*m/mol.
_SENSITIVITY_PAPER_TO_SI = 1.0e-2


def ensure_finite(value: float, name: str = "value") -> float:
    """Return ``value`` as a float, raising :class:`UnitsError` if not finite."""
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise UnitsError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(out):
        raise UnitsError(f"{name} must be finite, got {out!r}")
    return out


def ensure_positive(value: float, name: str = "value") -> float:
    """Return ``value`` as a float, raising unless it is finite and > 0."""
    out = ensure_finite(value, name)
    if out <= 0.0:
        raise UnitsError(f"{name} must be > 0, got {out!r}")
    return out


def ensure_non_negative(value: float, name: str = "value") -> float:
    """Return ``value`` as a float, raising unless it is finite and >= 0."""
    out = ensure_finite(value, name)
    if out < 0.0:
        raise UnitsError(f"{name} must be >= 0, got {out!r}")
    return out


def ensure_fraction(value: float, name: str = "value") -> float:
    """Return ``value`` as a float, raising unless it lies in [0, 1]."""
    out = ensure_finite(value, name)
    if not 0.0 <= out <= 1.0:
        raise UnitsError(f"{name} must be in [0, 1], got {out!r}")
    return out


def mv_to_v(millivolts: float) -> float:
    """Convert millivolts to volts (paper potentials are quoted in mV)."""
    return ensure_finite(millivolts, "millivolts") * 1.0e-3


def v_to_mv(volts: float) -> float:
    """Convert volts to millivolts."""
    return ensure_finite(volts, "volts") * 1.0e3


def ua_to_a(microamps: float) -> float:
    """Convert microamperes to amperes (paper current ranges are in uA)."""
    return ensure_finite(microamps, "microamps") * 1.0e-6


def a_to_ua(amps: float) -> float:
    """Convert amperes to microamperes."""
    return ensure_finite(amps, "amps") * 1.0e6


def na_to_a(nanoamps: float) -> float:
    """Convert nanoamperes to amperes (readout resolutions are in nA)."""
    return ensure_finite(nanoamps, "nanoamps") * 1.0e-9


def a_to_na(amps: float) -> float:
    """Convert amperes to nanoamperes."""
    return ensure_finite(amps, "amps") * 1.0e9


def mm_conc_to_si(millimolar: float) -> float:
    """Convert mM to mol/m^3.  The factor is exactly 1 (1 mM == 1 mol/m^3)."""
    return ensure_finite(millimolar, "millimolar") * 1.0


def si_to_mm_conc(mol_per_m3: float) -> float:
    """Convert mol/m^3 to mM (identity factor, provided for symmetry)."""
    return ensure_finite(mol_per_m3, "mol_per_m3") * 1.0


def um_conc_to_si(micromolar: float) -> float:
    """Convert uM to mol/m^3 (1 uM == 1e-3 mol/m^3)."""
    return ensure_finite(micromolar, "micromolar") * 1.0e-3


def si_to_um_conc(mol_per_m3: float) -> float:
    """Convert mol/m^3 to uM."""
    return ensure_finite(mol_per_m3, "mol_per_m3") * 1.0e3


def mm2_to_m2(square_millimeters: float) -> float:
    """Convert mm^2 to m^2 (the Fig. 4 electrode area is 0.23 mm^2)."""
    return ensure_finite(square_millimeters, "square_millimeters") * 1.0e-6


def m2_to_mm2(square_meters: float) -> float:
    """Convert m^2 to mm^2."""
    return ensure_finite(square_meters, "square_meters") * 1.0e6


def cm2_to_m2(square_centimeters: float) -> float:
    """Convert cm^2 to m^2 (Table III sensitivities are per cm^2)."""
    return ensure_finite(square_centimeters, "square_centimeters") * 1.0e-4


def m2_to_cm2(square_meters: float) -> float:
    """Convert m^2 to cm^2."""
    return ensure_finite(square_meters, "square_meters") * 1.0e4


def um_to_m(micrometers: float) -> float:
    """Convert micrometers to meters (electrode radii, film thicknesses)."""
    return ensure_finite(micrometers, "micrometers") * 1.0e-6


def m_to_um(meters: float) -> float:
    """Convert meters to micrometers."""
    return ensure_finite(meters, "meters") * 1.0e6


def mv_per_s_to_v_per_s(mv_per_s: float) -> float:
    """Convert a scan rate quoted in mV/s (the paper's 20 mV/s) to V/s."""
    return ensure_finite(mv_per_s, "mv_per_s") * 1.0e-3


def v_per_s_to_mv_per_s(v_per_s: float) -> float:
    """Convert a scan rate in V/s to mV/s."""
    return ensure_finite(v_per_s, "v_per_s") * 1.0e3


def sensitivity_to_si(ua_per_mm_cm2: float) -> float:
    """Convert a paper sensitivity, uA/(mM*cm^2), to SI A*m/mol.

    Table III reports sensitivities in uA/(mM*cm^2); internally sensitivity
    is a current density per concentration, A/(m^2 * mol/m^3) = A*m/mol.
    """
    return ensure_finite(ua_per_mm_cm2, "ua_per_mm_cm2") * _SENSITIVITY_PAPER_TO_SI


def sensitivity_to_paper(amp_m_per_mol: float) -> float:
    """Convert an SI sensitivity (A*m/mol) to the paper unit uA/(mM*cm^2)."""
    return ensure_finite(amp_m_per_mol, "amp_m_per_mol") / _SENSITIVITY_PAPER_TO_SI
