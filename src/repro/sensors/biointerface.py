"""The silicon biointerface chip of the paper (Fig. 4).

The paper's platform is a silicon die carrying **five working electrodes**
(thin-film gold), **one counter** (gold) and **one reference** (silver),
passivated with SiO2, with pads matching an off-the-shelf interface;
electrode area 0.23 mm^2, "but can be further decreased".

:class:`BioInterface` models the chip: the electrode set, the physical
layout (a WE row with the RE/CE alongside, as in Fig. 4), pad count, and
die-area bookkeeping used by the platform cost model.  The concrete
paper panel (glucose / lactate / glutamate / CYP2B4 / cholesterol) is
assembled by :func:`repro.data.catalog.paper_biointerface` to keep the
data layer separate from this geometry layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.solution import Chamber
from repro.errors import SensorError
from repro.sensors.cell import CrosstalkModel, ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.materials import get_material
from repro.units import ensure_positive, m2_to_mm2

__all__ = ["BioInterface", "PAPER_WE_COUNT"]

#: Number of working electrodes on the paper's chip (Fig. 4).
PAPER_WE_COUNT = 5


@dataclass
class BioInterface:
    """A single-die biointerface: n WEs + CE + RE behind a pad row.

    Parameters
    ----------
    name:
        Chip identifier.
    working_electrodes:
        The functionalized WEs, in layout order.
    reference, counter:
        The shared RE (silver) and CE (gold) pads.
    we_pitch:
        Centre-to-centre WE spacing, m.
    pad_pitch:
        Bond-pad pitch, m (pads = WEs + RE + CE, one signal each).
    passivation:
        Name of the passivation layer (SiO2 on the paper's chip).
    """

    name: str
    working_electrodes: list[WorkingElectrode]
    reference: Electrode
    counter: Electrode
    we_pitch: float = 1.0e-3
    pad_pitch: float = 4.0e-4
    passivation: str = "SiO2"

    def __post_init__(self) -> None:
        if not self.working_electrodes:
            raise SensorError("a biointerface needs at least one WE")
        names = [we.name for we in self.working_electrodes]
        if len(set(names)) != len(names):
            raise SensorError(f"duplicate WE names on chip: {names}")
        if self.reference.role is not ElectrodeRole.REFERENCE:
            raise SensorError("reference pad must have role RE")
        if self.counter.role is not ElectrodeRole.COUNTER:
            raise SensorError("counter pad must have role CE")
        ensure_positive(self.we_pitch, "we_pitch")
        ensure_positive(self.pad_pitch, "pad_pitch")

    # -- structure -------------------------------------------------------------

    @property
    def n_working(self) -> int:
        return len(self.working_electrodes)

    @property
    def pad_count(self) -> int:
        """Bond pads: one per electrode (n WEs + RE + CE)."""
        return self.n_working + 2

    @property
    def electrode_area_total(self) -> float:
        """Sum of all electrode areas, m^2."""
        total = self.reference.area + self.counter.area
        total += sum(we.area for we in self.working_electrodes)
        return total

    @property
    def die_area(self) -> float:
        """Estimated die area, m^2.

        Electrode row (pitch x count) plus RE/CE strip plus the pad row —
        a simple but monotone model: more/larger electrodes always cost
        die area, which is what the cost-driven exploration needs.
        """
        we_row = self.we_pitch * self.we_pitch * self.n_working
        re_ce = 4.0 * (self.reference.area + self.counter.area)
        pads = self.pad_pitch * self.pad_pitch * self.pad_count * 2.0
        routing = 0.3 * (we_row + re_ce + pads)
        return we_row + re_ce + pads + routing

    def layout_summary(self) -> str:
        """Human-readable chip summary (used by reports and examples)."""
        lines = [
            f"BioInterface {self.name!r}: {self.n_working} WE + CE + RE, "
            f"{self.pad_count} pads, die ~{m2_to_mm2(self.die_area):.1f} mm^2,",
            f"  passivation {self.passivation}, WE pitch "
            f"{self.we_pitch * 1e3:.2f} mm",
        ]
        for we in self.working_electrodes:
            probe = we.probe.display_name if we.probe else "blank"
            targets = ", ".join(we.targets()) or "-"
            lines.append(
                f"  {we.name}: {we.material.display_name}, "
                f"{m2_to_mm2(we.area):.2f} mm^2, probe={probe}, "
                f"targets=[{targets}]")
        lines.append(
            f"  RE: {self.reference.material.display_name}, "
            f"CE: {self.counter.material.display_name}")
        return "\n".join(lines)

    # -- cell construction -------------------------------------------------------

    def as_cell(self, chamber: Chamber,
                crosstalk: CrosstalkModel | None = None) -> ElectrochemicalCell:
        """Wrap the chip and a chamber into an electrochemical cell."""
        return ElectrochemicalCell(
            chamber=chamber,
            working_electrodes=list(self.working_electrodes),
            reference=self.reference,
            counter=self.counter,
            we_pitch=self.we_pitch,
            crosstalk=crosstalk,
        )

    # -- factory -----------------------------------------------------------------

    @classmethod
    def gold_chip(cls, name: str,
                  working_electrodes: list[WorkingElectrode],
                  we_area: float | None = None) -> "BioInterface":
        """A paper-style chip: gold CE sized to the WEs, silver RE.

        ``we_area`` only sizes the CE/RE pads; the WEs keep their own
        areas (pass pre-built WEs).
        """
        if we_area is None:
            we_area = max(we.area for we in working_electrodes)
        reference = Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                              material=get_material("silver"),
                              area=we_area)
        counter = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                            material=get_material("gold"),
                            area=2.0 * we_area)
        return cls(name=name, working_electrodes=working_electrodes,
                   reference=reference, counter=counter)
