"""Electrode materials and their electrochemical personalities.

The paper's platform (Sec. III) deposits thin-film **gold** working and
counter electrodes and a **silver** reference on silicon; the cited sensor
works use screen-printed carbon, glassy carbon, and **rhodium-graphite**
(benzphetamine/aminopyrine, ref. [16]).  A material contributes:

- the specific double-layer capacitance (background charging current
  ``i = Cdl * A * dE/dt`` — the term that shrinks with electrode area,
  Sec. III),
- a catalytic shift of the H2O2 oxidation wave (carbon nanotube coatings
  lower the overpotential),
- a scale on the heterogeneous electron-transfer rate ``k0`` (how
  reversible CYP films behave on it),
- a faradaic leakage density (residual background at fixed potential), and
- a relative cost per area used by the platform cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SensorError
from repro.units import ensure_finite, ensure_non_negative, ensure_positive

__all__ = [
    "ElectrodeMaterial",
    "get_material",
    "material_names",
    "register_material",
    "GOLD",
    "SILVER",
    "PLATINUM",
    "GLASSY_CARBON",
    "SCREEN_PRINTED_CARBON",
    "RHODIUM_GRAPHITE",
]


@dataclass(frozen=True)
class ElectrodeMaterial:
    """Electrochemical properties of an electrode material.

    Parameters
    ----------
    name:
        Registry key.
    double_layer_capacitance:
        Specific capacitance, F/m^2.
    h2o2_wave_shift:
        Shift (V) applied to the H2O2 oxidation half-wave relative to the
        reference gold surface; negative = catalytic.
    k0_scale:
        Multiplier on the standard electron-transfer rate of redox probes
        immobilised on this material (1.0 = gold-like).
    leakage_density:
        Residual faradaic background at working potentials, A/m^2.
    roughness:
        Electroactive-to-geometric area ratio (>= 1).
    cost_per_mm2:
        Relative fabrication cost per mm^2 (arbitrary units; used by the
        design-space cost model, not by physics).
    suitable_reference:
        True for materials usable as a (pseudo-)reference electrode —
        silver, via its Ag/AgCl couple.
    """

    name: str
    display_name: str
    double_layer_capacitance: float
    h2o2_wave_shift: float = 0.0
    k0_scale: float = 1.0
    leakage_density: float = 1.0e-4
    roughness: float = 1.0
    cost_per_mm2: float = 1.0
    suitable_reference: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SensorError("material name must be non-empty")
        ensure_positive(self.double_layer_capacitance, "double_layer_capacitance")
        ensure_finite(self.h2o2_wave_shift, "h2o2_wave_shift")
        ensure_positive(self.k0_scale, "k0_scale")
        ensure_non_negative(self.leakage_density, "leakage_density")
        if self.roughness < 1.0:
            raise SensorError(
                f"roughness must be >= 1 (electroactive >= geometric), "
                f"got {self.roughness!r}")
        ensure_non_negative(self.cost_per_mm2, "cost_per_mm2")


_REGISTRY: dict[str, ElectrodeMaterial] = {}


def register_material(material: ElectrodeMaterial,
                      overwrite: bool = False) -> ElectrodeMaterial:
    """Add a material to the registry and return it."""
    if material.name in _REGISTRY and not overwrite:
        raise SensorError(
            f"material {material.name!r} already registered; "
            f"pass overwrite=True to replace it")
    _REGISTRY[material.name] = material
    return material


def get_material(name: str) -> ElectrodeMaterial:
    """Look up a material by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SensorError(f"unknown material {name!r} (known: {known})") from None


def material_names() -> tuple[str, ...]:
    """All registered material names, sorted."""
    return tuple(sorted(_REGISTRY))


#: Thin-film gold: the platform's WE/CE material (Sec. III).
GOLD = register_material(ElectrodeMaterial(
    name="gold", display_name="Thin-film gold",
    double_layer_capacitance=0.20,     # 20 uF/cm^2
    h2o2_wave_shift=0.0,
    k0_scale=1.0,
    leakage_density=5.0e-5,
    roughness=1.1,
    cost_per_mm2=3.0,
))

#: Evaporated silver: the platform's reference electrode (Ag/AgCl).
SILVER = register_material(ElectrodeMaterial(
    name="silver", display_name="Evaporated silver (Ag/AgCl)",
    double_layer_capacitance=0.25,
    h2o2_wave_shift=0.05,
    k0_scale=0.8,
    leakage_density=1.0e-4,
    roughness=1.2,
    cost_per_mm2=1.5,
    suitable_reference=True,
))

#: Platinum: classic H2O2-oxidation anode, catalytic (lower overpotential).
PLATINUM = register_material(ElectrodeMaterial(
    name="platinum", display_name="Platinum",
    double_layer_capacitance=0.24,
    h2o2_wave_shift=-0.05,
    k0_scale=1.2,
    leakage_density=6.0e-5,
    roughness=1.3,
    cost_per_mm2=5.0,
))

#: Glassy carbon: common lab electrode for nanostructured films.
GLASSY_CARBON = register_material(ElectrodeMaterial(
    name="glassy_carbon", display_name="Glassy carbon",
    double_layer_capacitance=0.30,
    h2o2_wave_shift=0.10,
    k0_scale=0.6,
    leakage_density=8.0e-5,
    roughness=1.5,
    cost_per_mm2=0.8,
))

#: Screen-printed carbon: the cheap disposable-strip material (Sec. III).
SCREEN_PRINTED_CARBON = register_material(ElectrodeMaterial(
    name="screen_printed_carbon", display_name="Screen-printed carbon",
    double_layer_capacitance=0.45,
    h2o2_wave_shift=0.12,
    k0_scale=0.4,
    leakage_density=2.0e-4,
    roughness=2.5,
    cost_per_mm2=0.1,
))

#: Rhodium-graphite: the electrode of ref. [16] for CYP2B4
#: (benzphetamine/aminopyrine); modest electron-transfer kinetics, which is
#: why those sensitivities in Table III are low.
RHODIUM_GRAPHITE = register_material(ElectrodeMaterial(
    name="rhodium_graphite", display_name="Rhodium-graphite",
    double_layer_capacitance=0.35,
    h2o2_wave_shift=0.08,
    k0_scale=0.5,
    leakage_density=1.5e-4,
    roughness=2.0,
    cost_per_mm2=1.2,
))
