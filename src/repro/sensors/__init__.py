"""Physical sensor substrate: materials, electrodes, cells, chips, arrays."""

from repro.sensors.array import SensorArray
from repro.sensors.biointerface import PAPER_WE_COUNT, BioInterface
from repro.sensors.cell import CrosstalkModel, ElectrochemicalCell
from repro.sensors.electrode import (
    PAPER_ELECTRODE_AREA,
    Electrode,
    ElectrodeRole,
    WorkingElectrode,
)
from repro.sensors.functionalization import (
    CARBON_NANOTUBES,
    EPOXY_STABILIZING,
    GOLD_NANOPARTICLES,
    POLYMER_PERMSELECTIVE,
    Functionalization,
    Membrane,
    Nanostructure,
    blank,
    with_cytochrome,
    with_oxidase,
)
from repro.sensors.materials import (
    GLASSY_CARBON,
    GOLD,
    PLATINUM,
    RHODIUM_GRAPHITE,
    SCREEN_PRINTED_CARBON,
    SILVER,
    ElectrodeMaterial,
    get_material,
    material_names,
    register_material,
)

__all__ = [
    "ElectrodeMaterial", "get_material", "material_names",
    "register_material",
    "GOLD", "SILVER", "PLATINUM", "GLASSY_CARBON",
    "SCREEN_PRINTED_CARBON", "RHODIUM_GRAPHITE",
    "Nanostructure", "Membrane", "Functionalization",
    "CARBON_NANOTUBES", "GOLD_NANOPARTICLES",
    "POLYMER_PERMSELECTIVE", "EPOXY_STABILIZING",
    "blank", "with_oxidase", "with_cytochrome",
    "ElectrodeRole", "Electrode", "WorkingElectrode",
    "PAPER_ELECTRODE_AREA",
    "CrosstalkModel", "ElectrochemicalCell",
    "BioInterface", "PAPER_WE_COUNT",
    "SensorArray",
]
