"""Electrode geometry and the functionalized working electrode.

An :class:`Electrode` is a metal pad with a role (working / reference /
counter), a material, and an area; the paper's platform uses 0.23 mm^2
pads ("but can be further decreased", Sec. III).  A
:class:`WorkingElectrode` adds the bio-layer stack and exposes the
*effective* electrochemical parameters the simulators consume:

- the effective Nernst diffusion-layer thickness, which interpolates
  between the planar quiescent value and the microdisk limit
  ``pi*r/4`` — this is the quantitative form of the paper's claim that
  smaller electrodes respond faster,
- the effective enzyme film (nanostructure gain applied),
- the effective H2O2 oxidation wave (material + nanostructure shifts),
- steady-state faradaic current for a given applied potential and chamber.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.chem import constants as C
from repro.chem.analytic import planar_response_time
from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.chem.kinetics import MichaelisMentenFilm, steady_state_turnover_flux
from repro.chem.redox import OxidationEfficiency
from repro.chem.solution import Chamber
from repro.chem.species import get_species
from repro.errors import SensorError
from repro.sensors.functionalization import Functionalization, blank
from repro.sensors.materials import ElectrodeMaterial, get_material
from repro.units import ensure_non_negative, ensure_positive

__all__ = [
    "ElectrodeRole",
    "Electrode",
    "WorkingElectrode",
    "PAPER_ELECTRODE_AREA",
]

#: The electrode area of the paper's biointerface, m^2 (0.23 mm^2, Sec. III).
PAPER_ELECTRODE_AREA = 0.23e-6


class ElectrodeRole(enum.Enum):
    """The three roles of a classic electrochemical cell (Sec. II)."""

    WORKING = "WE"
    REFERENCE = "RE"
    COUNTER = "CE"


@dataclass(frozen=True)
class Electrode:
    """A bare electrode pad.

    Parameters
    ----------
    name:
        Identifier within its platform (e.g. ``"WE1"``).
    role:
        Working, reference or counter.
    material:
        An :class:`~repro.sensors.materials.ElectrodeMaterial` or a
        registered material name.
    area:
        Geometric area, m^2.
    """

    name: str
    role: ElectrodeRole
    material: ElectrodeMaterial
    area: float = PAPER_ELECTRODE_AREA

    def __post_init__(self) -> None:
        if not self.name:
            raise SensorError("electrode name must be non-empty")
        if isinstance(self.material, str):
            object.__setattr__(self, "material", get_material(self.material))
        ensure_positive(self.area, "area")
        if (self.role is ElectrodeRole.REFERENCE
                and not self.material.suitable_reference):
            raise SensorError(
                f"electrode {self.name!r}: material "
                f"{self.material.name!r} is not suitable as a reference "
                f"(the paper uses evaporated silver)")

    @property
    def equivalent_radius(self) -> float:
        """Radius of the equal-area disk, m."""
        return math.sqrt(self.area / math.pi)

    @property
    def capacitance(self) -> float:
        """Double-layer capacitance, F (specific capacitance x real area)."""
        return (self.material.double_layer_capacitance
                * self.material.roughness * self.area)

    def charging_current(self, scan_rate: float) -> float:
        """Capacitive background ``i = Cdl * A * dE/dt``, amperes.

        Proportional to area — the background-current argument for
        microelectrodes (Sec. III).  ``scan_rate`` in V/s (signed).
        """
        return self.capacitance * scan_rate

    def leakage_current(self) -> float:
        """Residual faradaic background at working potentials, amperes."""
        return self.material.leakage_density * self.area

    def with_area(self, area: float) -> "Electrode":
        """Copy with a different area (scaling studies)."""
        return Electrode(self.name, self.role, self.material,
                         ensure_positive(area, "area"))


@dataclass(frozen=True)
class WorkingElectrode:
    """A working electrode with its functionalization stack.

    Composition over inheritance: wraps a bare :class:`Electrode` (whose
    role must be WORKING) plus a
    :class:`~repro.sensors.functionalization.Functionalization`.
    """

    electrode: Electrode
    functionalization: Functionalization = field(default_factory=blank)
    #: Nernst-layer thickness of the surrounding (quiescent) solution, m.
    nernst_layer: float = C.NERNST_LAYER_QUIESCENT
    #: RMS electrochemical background-noise density at the sensor node,
    #: A/sqrt(Hz) per m of equivalent radius — the paper notes sensor noise
    #: "is hard to quantify analytically, but it can be measured
    #: experimentally"; we model it as scaling with electrode perimeter.
    sensor_noise_density: float = 2.0e-9

    def __post_init__(self) -> None:
        if self.electrode.role is not ElectrodeRole.WORKING:
            raise SensorError(
                f"electrode {self.electrode.name!r} has role "
                f"{self.electrode.role.value}, expected WE")
        ensure_positive(self.nernst_layer, "nernst_layer")
        ensure_non_negative(self.sensor_noise_density, "sensor_noise_density")

    # -- convenience passthroughs ---------------------------------------------

    @property
    def name(self) -> str:
        return self.electrode.name

    @property
    def area(self) -> float:
        return self.electrode.area

    @property
    def material(self) -> ElectrodeMaterial:
        return self.electrode.material

    @property
    def probe(self) -> Oxidase | CytochromeP450 | None:
        return self.functionalization.probe

    @property
    def is_blank(self) -> bool:
        return self.functionalization.is_blank

    def targets(self) -> tuple[str, ...]:
        """Species this electrode senses through its probe."""
        return self.functionalization.targets()

    # -- effective transport parameters ---------------------------------------

    def effective_nernst_layer(self, species: str | None = None) -> float:
        """Effective diffusion-layer thickness, m.

        Combines the planar quiescent layer with the microdisk limit
        ``pi*r/4`` as parallel transport resistances:
        ``1/delta_eff = 1/delta_planar + 1/delta_disk``.  Large electrodes
        recover the planar value; microelectrodes the disk value — and
        with it the shorter response time of Sec. III.
        """
        delta_disk = math.pi * self.electrode.equivalent_radius / 4.0
        return 1.0 / (1.0 / self.nernst_layer + 1.0 / delta_disk)

    def mass_transfer_coefficient(self, species: str) -> float:
        """m = D_eff / delta_eff for ``species``, m/s (membrane included)."""
        sp = get_species(species)
        d_eff = sp.diffusivity * self.functionalization.permeability
        return d_eff / self.effective_nernst_layer(species)

    def response_time(self, species: str, settle_fraction: float = 0.9) -> float:
        """Diffusive settling time to ``settle_fraction`` of steady state, s."""
        sp = get_species(species)
        d_eff = sp.diffusivity * self.functionalization.permeability
        return planar_response_time(self.effective_nernst_layer(species),
                                    d_eff, settle_fraction)

    # -- effective electrochemical parameters ----------------------------------

    def effective_film(self) -> MichaelisMentenFilm:
        """The probe's film with the nanostructure gain applied.

        Only meaningful for oxidase probes; raises otherwise.
        """
        probe = self.probe
        if not isinstance(probe, Oxidase):
            raise SensorError(
                f"electrode {self.name!r} has no oxidase film")
        return probe.film.scaled(self.functionalization.signal_gain)

    def effective_h2o2_wave(self) -> OxidationEfficiency:
        """The H2O2 collection wave with material/nanostructure shifts."""
        probe = self.probe
        if not isinstance(probe, Oxidase):
            raise SensorError(
                f"electrode {self.name!r} has no oxidase probe")
        shift = (self.material.h2o2_wave_shift
                 + self.functionalization.h2o2_wave_shift)
        return probe.h2o2_wave.shifted(shift)

    def effective_k0(self, substrate: str) -> float:
        """Heterogeneous rate constant for a CYP channel on this surface."""
        probe = self.probe
        if not isinstance(probe, CytochromeP450):
            raise SensorError(
                f"electrode {self.name!r} has no cytochrome probe")
        channel = probe.channel_for(substrate)
        return (channel.kinetics.k0 * self.material.k0_scale
                * self.functionalization.k0_gain)

    def sensor_noise_rms(self, bandwidth: float = 1.0) -> float:
        """RMS electrochemical noise at the sensor node, amperes."""
        ensure_positive(bandwidth, "bandwidth")
        return (self.sensor_noise_density * self.electrode.equivalent_radius
                / 1.0e-3 * math.sqrt(bandwidth))

    # -- steady-state faradaic response ----------------------------------------

    def steady_state_current(self, e_applied: float, chamber: Chamber) -> float:
        """Total steady faradaic current at ``e_applied``, amperes.

        Sums, as applicable:

        - the oxidase H2O2-oxidation current
          ``i = n_e * F * A * eta(E) * v_ss(c_bulk)``,
        - CYP channel currents at fixed potential (the reduction plateau
          scaled by the Nernstian driven fraction),
        - direct oxidation of species like dopamine/etoposide on *any*
          electrode — including blanks, which is the paper's CDS caveat,
        - the material's faradaic leakage.
        """
        total = self.electrode.leakage_current()
        probe = self.probe
        if isinstance(probe, Oxidase):
            total += self.oxidase_current(probe, e_applied, chamber)
        elif isinstance(probe, CytochromeP450):
            total += self.cyp_fixed_potential_current(probe, e_applied, chamber)
        total += self.direct_oxidation_current(e_applied, chamber)
        return total

    def oxidase_current(self, probe: Oxidase, e_applied: float,
                         chamber: Chamber) -> float:
        c_bulk = chamber.bulk(probe.substrate)
        if c_bulk <= 0.0:
            return 0.0
        film = self.effective_film()
        m = self.mass_transfer_coefficient(probe.substrate)
        flux = steady_state_turnover_flux(c_bulk, film, m)
        eta = self.effective_h2o2_wave().at(e_applied)
        return (probe.electrons_per_substrate * C.FARADAY * self.area
                * eta * flux)

    def cyp_fixed_potential_current(self, probe: CytochromeP450,
                                     e_applied: float,
                                     chamber: Chamber) -> float:
        """Reduction current (negative) of every channel at fixed potential."""
        total = 0.0
        for channel in probe.channels:
            c_bulk = chamber.bulk(channel.substrate)
            if c_bulk <= 0.0:
                continue
            sp = get_species(channel.substrate)
            m = self.mass_transfer_coefficient(channel.substrate)
            n = channel.kinetics.couple.n_electrons
            plateau = n * C.FARADAY * self.area * m * c_bulk
            saturation = c_bulk / (channel.km + c_bulk)
            driven = channel.kinetics.couple.reduced_fraction(e_applied)
            gain = self.functionalization.signal_gain
            total -= plateau * channel.efficiency * gain * saturation * driven
        return total

    def direct_oxidation_current(self, e_applied: float,
                                  chamber: Chamber) -> float:
        """Unmediated oxidation of direct oxidisers present in the chamber."""
        total = 0.0
        for name in chamber.species_present():
            sp = get_species(name)
            if sp.direct_oxidation_potential is None:
                continue
            wave = OxidationEfficiency(e_half=sp.direct_oxidation_potential)
            m = sp.diffusivity / self.effective_nernst_layer(name)
            plateau = (sp.n_electrons * C.FARADAY * self.area * m
                       * chamber.bulk(name))
            total += plateau * wave.at(e_applied)
        return total
