"""Working-electrode functionalization: probes, nanostructures, membranes.

Section III of the paper: working electrodes "can be functionalized by
nanostructures, to increase sensitivity; by polymers, to provide long-term
stability; and by the enzyme probe to enhance selectivity."  A
:class:`Functionalization` bundles exactly those three layers:

- ``probe`` — an :class:`~repro.chem.enzymes.Oxidase` or
  :class:`~repro.chem.enzymes.CytochromeP450` (or ``None`` for a blank
  electrode, the CDS reference of Sec. II-C),
- ``nanostructure`` — e.g. carbon nanotubes: multiplies the effective film
  turnover (more enzyme wired per geometric area) and lowers the H2O2
  oxidation overpotential,
- ``membrane`` — a polymer layer trading sensitivity (extra transport
  resistance) for stability (drift suppression) and an extended upper
  linear range (it starves the film, delaying saturation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.errors import SensorError
from repro.units import ensure_positive

__all__ = [
    "Nanostructure",
    "Membrane",
    "Functionalization",
    "CARBON_NANOTUBES",
    "GOLD_NANOPARTICLES",
    "POLYMER_PERMSELECTIVE",
    "EPOXY_STABILIZING",
    "blank",
    "with_oxidase",
    "with_cytochrome",
]


@dataclass(frozen=True)
class Nanostructure:
    """A nanostructuring layer deposited before the enzyme.

    ``signal_gain`` multiplies the film's maximum turnover (vmax): more
    electroactive area wires more enzyme.  ``h2o2_wave_shift`` (V,
    negative = catalytic) adds to the material's own shift.
    ``cost_per_mm2`` is the added fabrication cost.
    """

    name: str
    signal_gain: float = 1.0
    h2o2_wave_shift: float = 0.0
    k0_gain: float = 1.0
    cost_per_mm2: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SensorError("nanostructure name must be non-empty")
        ensure_positive(self.signal_gain, "signal_gain")
        ensure_positive(self.k0_gain, "k0_gain")


@dataclass(frozen=True)
class Membrane:
    """A polymer membrane over the enzyme film.

    ``permeability`` in (0, 1] scales the analyte's effective mass
    transfer through the layer; ``drift_suppression`` in [0, 1) is the
    fraction of slow baseline drift removed (long-term stability,
    Sec. III); ``range_extension`` (>= 1) multiplies the upper linear
    limit (diffusion-limited films saturate later).
    """

    name: str
    permeability: float = 1.0
    drift_suppression: float = 0.0
    range_extension: float = 1.0
    cost_per_mm2: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SensorError("membrane name must be non-empty")
        if not 0.0 < self.permeability <= 1.0:
            raise SensorError(
                f"permeability must be in (0, 1], got {self.permeability!r}")
        if not 0.0 <= self.drift_suppression < 1.0:
            raise SensorError(
                f"drift_suppression must be in [0, 1), "
                f"got {self.drift_suppression!r}")
        if self.range_extension < 1.0:
            raise SensorError(
                f"range_extension must be >= 1, got {self.range_extension!r}")


#: Multi-walled carbon nanotubes (refs. [8], [15]): the paper notes
#: nanostructuration "brings much larger signals".
CARBON_NANOTUBES = Nanostructure(
    name="carbon_nanotubes", signal_gain=4.0,
    h2o2_wave_shift=-0.10, k0_gain=3.0, cost_per_mm2=0.6,
)

#: Gold nanoparticles: milder gain, good electron transfer.
GOLD_NANOPARTICLES = Nanostructure(
    name="gold_nanoparticles", signal_gain=2.0,
    h2o2_wave_shift=-0.05, k0_gain=2.0, cost_per_mm2=1.0,
)

#: Permselective polymer (e.g. Nafion-like): screens interferents and
#: extends the linear range at some sensitivity cost.
POLYMER_PERMSELECTIVE = Membrane(
    name="permselective_polymer", permeability=0.6,
    drift_suppression=0.5, range_extension=2.0, cost_per_mm2=0.2,
)

#: Epoxy-polyurethane stabilising coat for long-term implants (ref. [3]).
EPOXY_STABILIZING = Membrane(
    name="epoxy_stabilizing", permeability=0.8,
    drift_suppression=0.8, range_extension=1.5, cost_per_mm2=0.3,
)


@dataclass(frozen=True)
class Functionalization:
    """The complete bio-layer stack on one working electrode."""

    probe: Oxidase | CytochromeP450 | None = None
    nanostructure: Nanostructure | None = None
    membrane: Membrane | None = None

    @property
    def is_blank(self) -> bool:
        """True for an enzyme-free electrode (the CDS reference WE)."""
        return self.probe is None

    @property
    def probe_family(self) -> str:
        """``"oxidase"``, ``"cytochrome"`` or ``"blank"``."""
        if self.probe is None:
            return "blank"
        if isinstance(self.probe, Oxidase):
            return "oxidase"
        return "cytochrome"

    @property
    def signal_gain(self) -> float:
        """Net vmax multiplier from nanostructuring."""
        return self.nanostructure.signal_gain if self.nanostructure else 1.0

    @property
    def k0_gain(self) -> float:
        """Net electron-transfer-rate multiplier from nanostructuring."""
        return self.nanostructure.k0_gain if self.nanostructure else 1.0

    @property
    def h2o2_wave_shift(self) -> float:
        """Half-wave shift contributed by the nanostructure, volts."""
        return self.nanostructure.h2o2_wave_shift if self.nanostructure else 0.0

    @property
    def permeability(self) -> float:
        """Mass-transfer scale of the membrane (1.0 when absent)."""
        return self.membrane.permeability if self.membrane else 1.0

    @property
    def drift_suppression(self) -> float:
        """Fraction of slow drift removed by the membrane."""
        return self.membrane.drift_suppression if self.membrane else 0.0

    @property
    def added_cost_per_mm2(self) -> float:
        """Extra fabrication cost of the stack, per mm^2."""
        cost = 0.0
        if self.nanostructure is not None:
            cost += self.nanostructure.cost_per_mm2
        if self.membrane is not None:
            cost += self.membrane.cost_per_mm2
        return cost

    def targets(self) -> tuple[str, ...]:
        """Species this electrode responds to through its probe."""
        if self.probe is None:
            return ()
        if isinstance(self.probe, Oxidase):
            return (self.probe.substrate,)
        return self.probe.substrates

    def with_membrane(self, membrane: Membrane | None) -> "Functionalization":
        """Copy with a different membrane."""
        return replace(self, membrane=membrane)

    def with_nanostructure(self,
                           nanostructure: Nanostructure | None,
                           ) -> "Functionalization":
        """Copy with a different nanostructure."""
        return replace(self, nanostructure=nanostructure)


def blank() -> Functionalization:
    """An enzyme-free electrode (CDS blank reference, Sec. II-C)."""
    return Functionalization(probe=None)


def with_oxidase(probe: Oxidase,
                 nanostructure: Nanostructure | None = None,
                 membrane: Membrane | None = None) -> Functionalization:
    """Functionalize with an oxidase probe."""
    if not isinstance(probe, Oxidase):
        raise SensorError(f"expected an Oxidase, got {type(probe).__name__}")
    return Functionalization(probe=probe, nanostructure=nanostructure,
                             membrane=membrane)


def with_cytochrome(probe: CytochromeP450,
                    nanostructure: Nanostructure | None = None,
                    membrane: Membrane | None = None) -> Functionalization:
    """Functionalize with a cytochrome P450 probe."""
    if not isinstance(probe, CytochromeP450):
        raise SensorError(
            f"expected a CytochromeP450, got {type(probe).__name__}")
    return Functionalization(probe=probe, nanostructure=nanostructure,
                             membrane=membrane)
