"""Sensor arrays: one- and two-dimensional tilings of cells (Sec. II).

The paper: "A one-dimensional (or two-dimensional) sensor array consists of
k (or k x j) such sensors, each with 3 or more electrodes.  Finally, when
the electrochemical reactions must be kept separated, each sensor in an
array must have its own chamber."

:class:`SensorArray` models exactly that: a grid of
:class:`~repro.sensors.cell.ElectrochemicalCell`, either all sharing one
chamber (one sample wets the whole die) or each with a private chamber
(isolated reactions).  The design-space explorer uses arrays as one of the
four sensor structures it enumerates.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.chem.solution import Chamber, Injection
from repro.errors import SensorError
from repro.sensors.cell import ElectrochemicalCell

__all__ = ["SensorArray"]


class SensorArray:
    """A k x j grid of electrochemical cells.

    Parameters
    ----------
    cells:
        Row-major list of rows of cells; all rows must have equal length.
    shared_chamber:
        When not ``None``, every cell's chamber *is* this object (the
        constructor checks identity) — injections reach all cells.  When
        ``None``, chambers are private and injections are per-cell.
    """

    def __init__(self, cells: list[list[ElectrochemicalCell]],
                 shared_chamber: Chamber | None = None) -> None:
        if not cells or not cells[0]:
            raise SensorError("array needs at least one cell")
        width = len(cells[0])
        if any(len(row) != width for row in cells):
            raise SensorError("array rows must have equal length")
        if shared_chamber is not None:
            for row in cells:
                for cell in row:
                    if cell.chamber is not shared_chamber:
                        raise SensorError(
                            "shared_chamber given but a cell holds a "
                            "different chamber object")
        self._cells = cells
        self.shared_chamber = shared_chamber

    # -- construction ------------------------------------------------------------

    @classmethod
    def shared(cls, chamber: Chamber,
               cell_factory: Callable[[Chamber, int, int], ElectrochemicalCell],
               rows: int, cols: int) -> "SensorArray":
        """Build a k x j array whose cells all share ``chamber``."""
        _check_dims(rows, cols)
        grid = [[cell_factory(chamber, r, c) for c in range(cols)]
                for r in range(rows)]
        return cls(grid, shared_chamber=chamber)

    @classmethod
    def chambered(cls,
                  cell_factory: Callable[[Chamber, int, int],
                                         ElectrochemicalCell],
                  rows: int, cols: int,
                  chamber_volume: float = 1.0e-8) -> "SensorArray":
        """Build a k x j array with a private chamber per cell."""
        _check_dims(rows, cols)
        grid = []
        for r in range(rows):
            row = []
            for c in range(cols):
                chamber = Chamber(name=f"chamber_{r}_{c}",
                                  volume=chamber_volume)
                row.append(cell_factory(chamber, r, c))
            grid.append(row)
        return cls(grid, shared_chamber=None)

    # -- shape -------------------------------------------------------------------

    @property
    def rows(self) -> int:
        return len(self._cells)

    @property
    def cols(self) -> int:
        return len(self._cells[0])

    @property
    def n_cells(self) -> int:
        return self.rows * self.cols

    @property
    def has_isolated_chambers(self) -> bool:
        return self.shared_chamber is None

    def cell(self, row: int, col: int) -> ElectrochemicalCell:
        """The cell at (row, col); raises on out-of-range indices."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise SensorError(
                f"cell index ({row}, {col}) outside {self.rows}x{self.cols}")
        return self._cells[row][col]

    def cells(self) -> list[ElectrochemicalCell]:
        """All cells, row-major."""
        return [cell for row in self._cells for cell in row]

    # -- aggregate properties -------------------------------------------------------

    def electrode_count(self) -> int:
        """Total pads over the whole array."""
        return sum(cell.electrode_count for cell in self.cells())

    def targets(self) -> tuple[str, ...]:
        """Union of every cell's targets, first-appearance order."""
        seen: list[str] = []
        for cell in self.cells():
            for t in cell.targets():
                if t not in seen:
                    seen.append(t)
        return tuple(seen)

    def chambers(self) -> tuple[Chamber, ...]:
        """Distinct chambers (one when shared)."""
        if self.shared_chamber is not None:
            return (self.shared_chamber,)
        return tuple(cell.chamber for cell in self.cells())

    # -- operations -------------------------------------------------------------------

    def inject_everywhere(self, injection: Injection) -> None:
        """Apply one injection to every chamber."""
        for chamber in self.chambers():
            chamber.inject(injection)

    def inject_at(self, row: int, col: int, injection: Injection) -> None:
        """Inject into one cell's chamber.

        On a shared-chamber array this necessarily reaches every cell —
        that is the physical point of separate chambers, and the reason
        the design rules force them for incompatible chemistries.
        """
        self.cell(row, col).chamber.inject(injection)


def _check_dims(rows: int, cols: int) -> None:
    if rows < 1 or cols < 1:
        raise SensorError(f"array dimensions must be >= 1, got {rows}x{cols}")
