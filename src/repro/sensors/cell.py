"""The three-electrode electrochemical cell (paper Sec. II).

A cell is one chamber plus its electrodes: one or more working electrodes,
one reference, one counter.  The paper's multi-target structures map to
cells as follows:

- *single sensor*: one WE, RE, CE — 3 electrodes;
- *n-target sensor*: n WEs sharing RE and CE — n+2 electrodes (Sec. II);
- *array*: several cells (see :mod:`repro.sensors.array`), each with its
  own chamber when reactions must be isolated.

The cell computes, per working electrode, the current the potentiostat
will see: steady-state faradaic response, capacitive/leakage background,
and the (small) H2O2 cross-talk from neighbouring oxidase electrodes
sharing the chamber — the paper argues this is negligible because the
H2O2 diffusion coefficient through the films is low, and the model keeps
it small but non-zero so the claim is *testable*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.chem import constants as C
from repro.chem.enzymes import Oxidase
from repro.chem.kinetics import steady_state_turnover_flux
from repro.chem.solution import Chamber
from repro.errors import SensorError
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.units import ensure_non_negative, ensure_positive

__all__ = ["CrosstalkModel", "ElectrochemicalCell"]


@dataclass(frozen=True)
class CrosstalkModel:
    """Pairwise H2O2 cross-talk between co-chambered oxidase electrodes.

    A fraction of the H2O2 produced at electrode *j* escapes its film and
    reaches electrode *i*:

        kappa_ij = base * exp(-d_ij / decay_length)

    with ``d_ij`` the centre-to-centre spacing.  ``base`` is small
    (default 0.2 %) because the H2O2 diffusivity through the sensing
    membranes is low (paper Sec. II-A); the A3 designs rule in
    :mod:`repro.core.rules` verifies the resulting error stays below the
    selectivity budget, and forces separate chambers when it does not.
    """

    base: float = 0.002
    decay_length: float = 1.0e-4

    def __post_init__(self) -> None:
        if not 0.0 <= self.base < 1.0:
            raise SensorError(f"base must be in [0, 1), got {self.base!r}")
        ensure_positive(self.decay_length, "decay_length")

    def coupling(self, distance: float) -> float:
        """kappa for electrodes ``distance`` metres apart."""
        ensure_non_negative(distance, "distance")
        return self.base * math.exp(-distance / self.decay_length)


class ElectrochemicalCell:
    """One chamber with its working, reference and counter electrodes.

    Parameters
    ----------
    chamber:
        The solution the electrodes sit in.
    working_electrodes:
        One or more :class:`~repro.sensors.electrode.WorkingElectrode`;
        names must be unique.
    reference:
        The RE; its material must be reference-suitable (silver/Ag-AgCl).
    counter:
        The CE; must be at least as large as the largest WE so it never
        limits the cell current (standard design rule).
    we_pitch:
        Centre-to-centre spacing between consecutive WEs, m (the Fig. 4
        chip places them in a row); feeds the cross-talk model.
    crosstalk:
        The :class:`CrosstalkModel`; pass ``None`` to disable entirely.
    """

    def __init__(self, chamber: Chamber,
                 working_electrodes: list[WorkingElectrode],
                 reference: Electrode, counter: Electrode,
                 we_pitch: float = 1.0e-3,
                 crosstalk: CrosstalkModel | None = None) -> None:
        if not working_electrodes:
            raise SensorError("a cell needs at least one working electrode")
        names = [we.name for we in working_electrodes]
        if len(set(names)) != len(names):
            raise SensorError(f"duplicate working-electrode names: {names}")
        if reference.role is not ElectrodeRole.REFERENCE:
            raise SensorError(
                f"electrode {reference.name!r} has role "
                f"{reference.role.value}, expected RE")
        if counter.role is not ElectrodeRole.COUNTER:
            raise SensorError(
                f"electrode {counter.name!r} has role "
                f"{counter.role.value}, expected CE")
        largest_we = max(we.area for we in working_electrodes)
        if counter.area < largest_we:
            raise SensorError(
                f"counter electrode ({counter.area:.3g} m^2) must be at "
                f"least as large as the largest WE ({largest_we:.3g} m^2) "
                f"so it never limits the cell current")
        self.chamber = chamber
        self.working_electrodes = list(working_electrodes)
        self.reference = reference
        self.counter = counter
        self.we_pitch = ensure_positive(we_pitch, "we_pitch")
        self.crosstalk = crosstalk if crosstalk is not None else CrosstalkModel()

    # -- lookup ----------------------------------------------------------------

    @property
    def electrode_count(self) -> int:
        """Total pads: n WEs + RE + CE (the paper's n+2 structure)."""
        return len(self.working_electrodes) + 2

    def we_names(self) -> tuple[str, ...]:
        return tuple(we.name for we in self.working_electrodes)

    def working_electrode(self, name: str) -> WorkingElectrode:
        for we in self.working_electrodes:
            if we.name == name:
                return we
        raise SensorError(
            f"no working electrode {name!r} in cell "
            f"(have: {', '.join(self.we_names())})")

    def targets(self) -> tuple[str, ...]:
        """Every species sensed by some WE, in electrode order."""
        seen: list[str] = []
        for we in self.working_electrodes:
            for t in we.targets():
                if t not in seen:
                    seen.append(t)
        return tuple(seen)

    # -- currents ---------------------------------------------------------------

    def faradaic_current(self, we_name: str, e_applied: float) -> float:
        """Steady faradaic current of one WE at ``e_applied``, amperes."""
        we = self.working_electrode(we_name)
        return we.steady_state_current(e_applied, self.chamber)

    def background_current(self, we_name: str, scan_rate: float = 0.0) -> float:
        """Capacitive charging background, amperes (zero at fixed potential)."""
        we = self.working_electrode(we_name)
        return we.electrode.charging_current(scan_rate)

    def crosstalk_current(self, we_name: str, e_applied: float) -> float:
        """H2O2 spill-over from neighbouring oxidase WEs, amperes.

        For each *other* oxidase electrode producing H2O2 in this chamber,
        a distance-decayed fraction of its H2O2 flux is collected here.
        """
        victim = self.working_electrode(we_name)
        index = self.we_names().index(we_name)
        total = 0.0
        for j, neighbour in enumerate(self.working_electrodes):
            if j == index or not isinstance(neighbour.probe, Oxidase):
                continue
            probe = neighbour.probe
            c_bulk = self.chamber.bulk(probe.substrate)
            if c_bulk <= 0.0:
                continue
            film = neighbour.effective_film()
            m = neighbour.mass_transfer_coefficient(probe.substrate)
            flux = steady_state_turnover_flux(c_bulk, film, m)
            kappa = self.crosstalk.coupling(abs(j - index) * self.we_pitch)
            # Spilled H2O2 oxidises on the victim at 2 e- per molecule,
            # collected over the victim's area.
            total += (C.ELECTRONS_PER_H2O2 * C.FARADAY * victim.area
                      * kappa * flux)
        return total

    def measured_current(self, we_name: str, e_applied: float,
                         scan_rate: float = 0.0,
                         include_crosstalk: bool = True) -> float:
        """What the potentiostat sees on ``we_name``: everything summed."""
        total = self.faradaic_current(we_name, e_applied)
        total += self.background_current(we_name, scan_rate)
        if include_crosstalk and len(self.working_electrodes) > 1:
            total += self.crosstalk_current(we_name, e_applied)
        return total

    def blank_current(self, e_applied: float,
                      reference_we: str | None = None) -> float:
        """Current of a blank (enzyme-free) WE, for CDS subtraction.

        If the cell has a dedicated blank electrode, names it with
        ``reference_we``; otherwise a virtual blank with the geometry of
        the first WE is evaluated.  Direct oxidisers in the chamber still
        contribute — the paper's caveat that a blank WE "is not helpful in
        presence of molecules such as Dopamine and Etoposide".
        """
        if reference_we is not None:
            we = self.working_electrode(reference_we)
            if not we.is_blank:
                raise SensorError(
                    f"electrode {reference_we!r} is functionalized; a CDS "
                    f"blank must be enzyme-free")
            return we.steady_state_current(e_applied, self.chamber)
        template = self.working_electrodes[0]
        virtual = WorkingElectrode(
            electrode=Electrode(
                name="_blank", role=ElectrodeRole.WORKING,
                material=template.material, area=template.area),
            nernst_layer=template.nernst_layer,
            sensor_noise_density=template.sensor_noise_density)
        return virtual.steady_state_current(e_applied, self.chamber)
