"""repro.devtools — static enforcement of the platform's invariants.

The platform's load-bearing guarantees (bit-identical replay, a closed
error taxonomy, lock-guarded shared state, versioned round-trippable
specs — PRs 4–8) were previously enforced only by runtime tests that
exercise particular code paths.  One unseeded ``np.random`` call or
one unlocked ``_index`` write in a *new* module breaks the contract
silently until a bit-identity pin flakes.  This package checks the
contracts statically, over every source file, on every CI run — the
same move as contract-based fault localisation in layered diagnostic
systems: verify each layer's invariant directly instead of waiting
for an end-to-end symptom.

Everything here is stdlib-``ast`` only: no third-party dependencies,
no importing (let alone executing) the code under analysis.

Rule catalog
============

REP001  determinism
    No global-state randomness (``np.random.<legacy>``, stdlib
    ``random``), no unseeded ``default_rng()``, no time-derived seeds
    in ``engine/``, ``chem/``, ``electronics/``, ``api/``,
    ``service/``.  Randomness must flow from an explicitly seeded
    ``np.random.Generator`` handed down from the spec — this is what
    makes inline, process, supervised, and served execution
    bit-identical.

REP002  error taxonomy
    No bare ``except:`` or ``except Exception/BaseException`` (they
    swallow the taxonomy; deliberate supervision boundaries carry a
    ``lint-ignore`` with a reason).  Inside ``api/`` and ``service/``,
    ``raise`` of a generic builtin is an error: embedding callers were
    promised that everything the platform raises is a ``ReproError``
    subclass.

REP003  lock discipline
    Attributes registered as lock-guarded (``RunStore._index``, the
    service registries, rate-limiter state) may only be touched inside
    ``with self.<lock>:``, in ``__init__``, or in a ``*_locked``
    helper — the naming convention for private methods documented as
    called under the lock.

REP004  spec-schema drift
    The extracted spec-dataclass field surface must match the
    committed ``devtools/schema_snapshot.json``.  Drift without a
    ``SCHEMA_VERSION`` bump is an error (old payloads would stop
    round-tripping with no migration gate); with a bump, refresh the
    snapshot via ``repro lint --write-schema``.

REP005  float equality
    ``==``/``!=`` against non-zero float literals is
    representation-dependent; use ``math.isclose`` or an explicit
    tolerance.  Exact-zero guards for degenerate inputs stay allowed.

REP006  provenance completeness
    Every spec field must appear in both ``to_dict`` and
    ``from_dict``: a field missing from ``to_dict`` never reaches
    ``canonical_payload``/``spec_hash``, so two different specs would
    silently share cached results; one missing from ``from_dict``
    cannot replay.

REP000 is reserved for the engine itself (unparseable files, malformed
suppressions) and is never suppressible.

Suppression policy
==================

Inline, same line or the line above::

    except Exception as exc:  # repro: lint-ignore[REP002] supervision

Every suppression names its rule(s) and carries a non-empty reason —
a missing reason or unknown rule id is itself a REP000 finding.  Use
suppressions for *intentional, permanent* exemptions (supervision
boundaries, GC-time teardown guards).  The committed baseline
(``devtools/lint_baseline.json``) is only for temporarily
grandfathered debt: entries that stop matching are reported as stale
so the file can only shrink.  This repo's baseline is empty.

Entry points: ``repro lint [paths] [--json] [--rule REP00x]
[--baseline FILE] [--write-baseline] [--write-schema]`` (exit 0 clean,
1 findings, 2 usage), or :func:`default_engine` from code/tests.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.baseline import Baseline
from repro.devtools.engine import (
    LintEngine,
    LintResult,
    ModuleSource,
    Rule,
    RuleVisitor,
    collect_sources,
)
from repro.devtools.findings import Finding, Suppression
from repro.devtools.reporters import render_json, render_text
from repro.devtools.rules import (
    DeterminismRule,
    ErrorTaxonomyRule,
    FloatEqualityRule,
    LockDisciplineRule,
)
from repro.devtools.schema import (
    SchemaSnapshotRule,
    SpecRoundTripRule,
    write_snapshot,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "DEFAULT_SNAPSHOT",
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "Finding",
    "FloatEqualityRule",
    "LintEngine",
    "LintResult",
    "LockDisciplineRule",
    "ModuleSource",
    "Rule",
    "RuleVisitor",
    "SchemaSnapshotRule",
    "SpecRoundTripRule",
    "Suppression",
    "collect_sources",
    "default_engine",
    "default_rules",
    "render_json",
    "render_text",
    "write_snapshot",
]

#: Committed artifacts living next to this package.
DEFAULT_SNAPSHOT = Path(__file__).parent / "schema_snapshot.json"
DEFAULT_BASELINE = Path(__file__).parent / "lint_baseline.json"


def default_rules(snapshot: str | Path | None = None) -> list[Rule]:
    """The full REP001–REP006 rule set with default configuration."""
    return [
        DeterminismRule(),
        ErrorTaxonomyRule(),
        LockDisciplineRule(),
        SchemaSnapshotRule(snapshot or DEFAULT_SNAPSHOT),
        FloatEqualityRule(),
        SpecRoundTripRule(),
    ]


def default_engine(root: str | Path | None = None,
                   baseline: str | Path | None = None,
                   snapshot: str | Path | None = None) -> LintEngine:
    """Engine wired exactly as the ``repro lint`` CLI runs it."""
    return LintEngine(
        default_rules(snapshot),
        root=root,
        baseline=Baseline.load(baseline or DEFAULT_BASELINE),
    )
