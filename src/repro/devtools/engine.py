"""The rule engine: source collection, rule dispatch, suppression.

The engine is deliberately dependency-free (stdlib ``ast`` only): it
must be runnable in CI before any third-party install step and must
never import the code it is analysing — every check is static.

Pipeline, per :meth:`LintEngine.run` call:

1. **Collect** — the given paths (files or directories) expand to a
   sorted list of ``*.py`` files; each becomes a :class:`ModuleSource`
   (text + parsed AST).  A file that does not parse yields a
   ``REP000`` finding instead of aborting the run.
2. **Check** — every rule sees every module
   (:meth:`Rule.check_module`) and, once, the whole source set
   (:meth:`Rule.check_project` — for cross-file contracts such as the
   schema snapshot).
3. **Suppress** — findings covered by an inline ``lint-ignore``
   annotation (see :mod:`repro.devtools.findings`) move to the
   ``suppressed`` list; malformed annotations are findings themselves.
4. **Baseline** — remaining findings matching a committed baseline
   entry move to ``baselined``; baseline entries matching nothing are
   reported as ``stale`` so grandfathered debt shrinks monotonically.

The surviving ``findings`` list is the gate: empty means exit 0.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.devtools.findings import (
    META_RULE,
    SEVERITY_ERROR,
    Finding,
    Suppression,
    scan_suppressions,
)

__all__ = ["ModuleSource", "Rule", "RuleVisitor", "LintEngine",
           "LintResult", "collect_sources"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache",
                        "node_modules"})


@dataclass
class ModuleSource:
    """One parsed source file handed to every rule."""

    path: Path
    relpath: str          # posix, relative to the lint root
    text: str
    tree: ast.Module | None   # None when the file does not parse

    @property
    def segments(self) -> tuple[str, ...]:
        """Path segments, for package-scoped rules (``engine``, ...)."""
        return tuple(Path(self.relpath).parts)


@runtime_checkable
class RuleVisitor(Protocol):
    """Structural protocol every lint rule satisfies.

    ``rule_id`` is the stable ``REP0xx`` identifier, ``severity`` one
    of ``"error"``/``"warning"`` (advisory ranking — any finding fails
    the gate), ``summary`` the one-line catalog entry the CLI help
    prints.  A rule implements either hook; the default base class
    makes both no-ops.
    """

    rule_id: str
    severity: str
    summary: str

    def check_module(self, module: ModuleSource) -> list[Finding]: ...

    def check_project(self, modules: list[ModuleSource]
                      ) -> list[Finding]: ...


class Rule:
    """Convenience base: per-module and whole-project hooks, no-ops."""

    rule_id = "REP999"
    severity = SEVERITY_ERROR
    summary = ""

    def check_module(self, module: ModuleSource) -> list[Finding]:
        return []

    def check_project(self, modules: list[ModuleSource]
                      ) -> list[Finding]:
        return []

    def finding(self, module: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=module.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule=self.rule_id, severity=self.severity,
                       message=message)


@dataclass
class LintResult:
    """Everything one lint run produced, ready for a reporter."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    n_files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _iter_files(path: Path):
    if path.is_file():
        yield path
        return
    for child in sorted(path.rglob("*.py")):
        if not any(part in _SKIP_DIRS for part in child.parts):
            yield child


def collect_sources(paths, root: Path) -> list[ModuleSource]:
    """Expand paths to parsed :class:`ModuleSource` records.

    Raises :class:`FileNotFoundError` for a path that does not exist —
    the CLI maps that to a usage error (exit 2), not a lint finding.
    """
    sources: list[ModuleSource] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for file in _iter_files(path):
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                relpath = resolved.relative_to(root.resolve()).as_posix()
            except ValueError:
                relpath = file.as_posix()
            text = file.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(file))
            except SyntaxError:
                tree = None
            sources.append(ModuleSource(path=file, relpath=relpath,
                                        text=text, tree=tree))
    return sources


class LintEngine:
    """Run a rule set over a source tree and post-process the findings.

    ``root`` anchors the relative paths findings (and therefore
    baseline entries and snapshot keys) are reported under — pass the
    repository root so reports are stable regardless of invocation
    directory.  ``baseline`` is a :class:`~repro.devtools.baseline.
    Baseline` (or ``None`` for none).
    """

    def __init__(self, rules, root: str | Path | None = None,
                 baseline=None) -> None:
        self.rules = list(rules)
        self.root = Path(root) if root is not None else Path.cwd()
        self.baseline = baseline
        ids = [rule.rule_id for rule in self.rules]
        if len(ids) != len(set(ids)):
            raise ValueError(f"duplicate rule ids: {sorted(ids)}")

    @property
    def known_rules(self) -> frozenset[str]:
        return frozenset({META_RULE,
                          *(rule.rule_id for rule in self.rules)})

    def run(self, paths) -> LintResult:
        sources = collect_sources(paths, self.root)
        result = LintResult(n_files=len(sources))
        raw: list[Finding] = []
        suppressions: dict[str, list[Suppression]] = {}
        for module in sources:
            ignores, problems = scan_suppressions(
                module.relpath, module.text, self.known_rules)
            suppressions[module.relpath] = ignores
            raw.extend(problems)
            if module.tree is None:
                raw.append(Finding(
                    path=module.relpath, line=1, col=1, rule=META_RULE,
                    severity=SEVERITY_ERROR,
                    message="file does not parse as Python"))
                continue
            for rule in self.rules:
                raw.extend(rule.check_module(module))
        for rule in self.rules:
            raw.extend(rule.check_project(sources))
        raw.sort()
        active: list[Finding] = []
        for finding in raw:
            if finding.rule != META_RULE and any(
                    s.covers(finding)
                    for s in suppressions.get(finding.path, ())):
                result.suppressed.append(finding)
            else:
                active.append(finding)
        if self.baseline is not None:
            active, baselined, stale = self.baseline.apply(active)
            result.baselined = baselined
            result.stale_baseline = stale
        result.findings = active
        return result
