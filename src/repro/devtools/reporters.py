"""Reporters: deterministic text and JSON renderings of a lint run.

Both reporters are pure functions of a
:class:`~repro.devtools.engine.LintResult` and emit byte-stable output
for a given result (findings arrive pre-sorted from the engine; JSON
keys are sorted) so CI diffs and golden tests stay meaningful.
"""

from __future__ import annotations

import json

from repro.devtools.engine import LintResult

__all__ = ["render_text", "render_json", "REPORT_FORMAT"]

REPORT_FORMAT = 1


def _plural(n: int, noun: str) -> str:
    return f"{n} {noun}{'' if n == 1 else 's'}"


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.get('path', '?')}: {entry.get('rule', '?')} "
            f"stale-baseline: entry no longer matches any finding; "
            f"remove it (or re-run --write-baseline)")
    summary = (f"{_plural(len(result.findings), 'finding')} "
               f"in {_plural(result.n_files, 'file')}")
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.stale_baseline:
        extras.append(
            f"{len(result.stale_baseline)} stale baseline entries")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "format": REPORT_FORMAT,
        "clean": result.clean,
        "n_files": result.n_files,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": list(result.stale_baseline),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
