"""The per-module invariant rules: determinism, error taxonomy, lock
discipline, float equality.

Each rule encodes one contract the platform's runtime tests pin only
piecewise (see :mod:`repro.devtools` for the catalog and rationale).
Rules are plain :class:`~repro.devtools.engine.Rule` subclasses over
stdlib ``ast`` — no imports of the analysed code, no execution.
"""

from __future__ import annotations

import ast

from repro.devtools.engine import ModuleSource, Rule
from repro.devtools.findings import SEVERITY_WARNING, Finding

__all__ = ["DeterminismRule", "ErrorTaxonomyRule", "LockDisciplineRule",
           "FloatEqualityRule", "RESTRICTED_PACKAGES",
           "BOUNDARY_PACKAGES", "DEFAULT_GUARDS"]

#: Packages whose modules must be bit-replayable: randomness only
#: through explicitly seeded generators (REP001), and whose raises at
#: the ``api``/``service`` boundary must stay inside the ReproError
#: taxonomy (REP002).
RESTRICTED_PACKAGES = ("engine", "chem", "electronics", "api", "service")
BOUNDARY_PACKAGES = ("api", "service")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _in_packages(module: ModuleSource, packages) -> bool:
    return any(segment in packages for segment in module.segments[:-1])


class DeterminismRule(Rule):
    """REP001 — randomness must flow from an explicitly seeded
    generator.

    Inside the restricted packages, global-state randomness
    (``np.random.<legacy>``, the stdlib ``random`` module), an
    *unseeded* ``np.random.default_rng()``, or a time-derived seed
    (``default_rng(time.time())``) all silently break bit-identical
    replay across the inline/process/supervised/served paths.  Only
    ``np.random.default_rng(seed)`` / ``Generator`` / ``SeedSequence``
    construction is allowed; everything downstream takes the generator
    as a parameter.
    """

    rule_id = "REP001"
    summary = ("no global or unseeded randomness in engine/chem/"
               "electronics/api/service; seed explicitly")

    #: np.random attributes that construct explicit generators rather
    #: than touching the legacy global state.
    ALLOWED_NP_RANDOM = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"})
    TIME_CALLS = frozenset({
        "time.time", "time.time_ns", "time.monotonic",
        "time.perf_counter", "datetime.now", "datetime.utcnow",
        "datetime.datetime.now", "datetime.datetime.utcnow"})

    def __init__(self, packages=RESTRICTED_PACKAGES) -> None:
        self.packages = tuple(packages)

    def check_module(self, module: ModuleSource) -> list[Finding]:
        if module.tree is None or not _in_packages(module, self.packages):
            return []
        findings = []
        random_aliases = {"random"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("random", "numpy.random"):
                    names = {a.name for a in node.names}
                    if node.module == "random" or not names.issubset(
                            self.ALLOWED_NP_RANDOM):
                        findings.append(self.finding(
                            module, node,
                            f"import from {node.module} pulls "
                            f"global-state randomness into a "
                            f"determinism-critical package; take a "
                            f"seeded np.random.Generator parameter "
                            f"instead"))
            elif isinstance(node, ast.Attribute):
                findings.extend(self._check_attribute(module, node,
                                                      random_aliases))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
        return findings

    def _check_attribute(self, module, node, random_aliases):
        dotted = _dotted(node)
        if dotted is None:
            return []
        parts = dotted.split(".")
        if parts[0] in ("np", "numpy") and len(parts) >= 3 \
                and parts[1] == "random":
            if parts[2] not in self.ALLOWED_NP_RANDOM:
                return [self.finding(
                    module, node,
                    f"{dotted} uses numpy's legacy global random state;"
                    f" use an explicitly seeded "
                    f"np.random.default_rng(seed) passed in as a "
                    f"parameter")]
        elif parts[0] in random_aliases and len(parts) == 2:
            return [self.finding(
                module, node,
                f"{dotted} draws from the stdlib global random state; "
                f"use an explicitly seeded np.random.Generator "
                f"parameter")]
        return []

    def _check_call(self, module, node):
        dotted = _dotted(node.func)
        if dotted is None:
            return []
        tail = dotted.rsplit(".", maxsplit=1)[-1]
        if tail not in ("default_rng", "SeedSequence"):
            return []
        if not node.args and not node.keywords:
            return [self.finding(
                module, node,
                f"{dotted}() without a seed draws OS entropy; every "
                f"generator in a determinism-critical package must be "
                f"seeded from the spec")]
        findings = []
        seeds = list(node.args) + [kw.value for kw in node.keywords
                                   if kw.arg in (None, "seed")]
        for seed in seeds:
            if isinstance(seed, ast.Call):
                seed_fn = _dotted(seed.func)
                if seed_fn in self.TIME_CALLS:
                    findings.append(self.finding(
                        module, seed,
                        f"time-derived seed {seed_fn}() makes every "
                        f"run unique; seeds must come from the spec"))
        return findings


class ErrorTaxonomyRule(Rule):
    """REP002 — the error surface is the closed ``ReproError`` taxonomy.

    Bare ``except:`` and ``except Exception/BaseException`` swallow the
    taxonomy (and ``KeyboardInterrupt``/cancellation, for the bare
    form) anywhere in the tree; intentional supervision boundaries
    carry a ``lint-ignore`` with their justification.  Inside the
    ``api``/``service`` boundary packages, ``raise`` of a generic
    builtin (``ValueError``, ``RuntimeError``, ...) leaks a
    non-``ReproError`` to embedding callers who were promised a single
    catchable base class; ``AssertionError`` (unreachable-state
    invariants) and ``NotImplementedError`` stay allowed.
    """

    rule_id = "REP002"
    summary = ("no bare/over-broad except; api/service must raise "
               "ReproError subclasses")

    BROAD = frozenset({"Exception", "BaseException"})
    GENERIC_RAISES = frozenset({
        "Exception", "BaseException", "ValueError", "TypeError",
        "KeyError", "IndexError", "LookupError", "ArithmeticError",
        "ZeroDivisionError", "RuntimeError", "OSError", "IOError",
        "AttributeError", "StopIteration", "TimeoutError",
        "ConnectionError", "NameError"})

    def __init__(self, boundary=BOUNDARY_PACKAGES) -> None:
        self.boundary = tuple(boundary)

    def check_module(self, module: ModuleSource) -> list[Finding]:
        if module.tree is None:
            return []
        findings = []
        at_boundary = _in_packages(module, self.boundary)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(module, node))
            elif isinstance(node, ast.Raise) and at_boundary:
                findings.extend(self._check_raise(module, node))
        return findings

    def _check_handler(self, module, node):
        if node.type is None:
            return [self.finding(
                module, node,
                "bare 'except:' catches everything including "
                "KeyboardInterrupt; name the expected ReproError "
                "subclass")]
        caught = node.type.elts if isinstance(node.type, ast.Tuple) \
            else [node.type]
        for exc in caught:
            name = _dotted(exc)
            if name in self.BROAD:
                return [self.finding(
                    module, node,
                    f"'except {name}' swallows the whole error "
                    f"taxonomy; catch the specific ReproError "
                    f"subclass (or lint-ignore a deliberate "
                    f"supervision boundary)")]
        return []

    def _check_raise(self, module, node):
        exc = node.exc
        if exc is None:  # re-raise
            return []
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _dotted(exc)
        if name in self.GENERIC_RAISES:
            return [self.finding(
                module, node,
                f"raise {name} crosses the api/service boundary "
                f"outside the ReproError taxonomy; raise the matching "
                f"ReproError subclass so callers can catch one base "
                f"class")]
        return []


#: Default lock-discipline table: class name -> (lock attributes,
#: guarded attributes).  Guarded state may only be touched inside
#: ``with self.<lock>:`` (any listed lock), in ``__init__``, or in a
#: method whose name ends in ``_locked`` (the documented
#: called-under-lock helper convention).  Only classes that *own* a
#: lock belong here — e.g. ``TokenBucket`` carries no lock and is
#: guarded externally by ``RateLimiter._lock``, so it is not listed.
DEFAULT_GUARDS = {
    "RunStore": (("_mutex",), ("_index",)),
    "JobState": (("_lock",), ("_records",)),
    "JobRegistry": (("_lock",), ("_jobs", "_counter")),
    "ServiceRuntime": (("_resilience_lock",), ("_resilience_totals",)),
    "PriorityJobQueue": (("_cond",), ("_tiers", "_size")),
    "RateLimiter": (("_lock",), ("_buckets",)),
    "UsageLedger": (("_lock",), ("_usage",)),
}


class LockDisciplineRule(Rule):
    """REP003 — shared mutable state is only touched under its lock.

    The table maps class names to their lock attribute(s) and the
    attributes that lock guards.  An access is compliant when it is
    lexically inside ``with self.<lock>:``, in ``__init__`` (no
    concurrent aliases exist yet), or in a ``*_locked`` helper (the
    convention for private methods documented as called under the
    lock).  Everything else — most importantly a *public* method
    reading ``_index`` or ``_jobs`` directly — is a finding.
    """

    rule_id = "REP003"
    summary = ("guarded shared state (RunStore._index, registry maps) "
               "only under 'with self._lock'")

    def __init__(self, guards=None) -> None:
        self.guards = dict(DEFAULT_GUARDS if guards is None else guards)

    def check_module(self, module: ModuleSource) -> list[Finding]:
        if module.tree is None:
            return []
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in self.guards:
                locks, guarded = self.guards[node.name]
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        findings.extend(self._check_method(
                            module, node.name, item, locks, guarded))
        return findings

    def _check_method(self, module, class_name, method, locks, guarded):
        if method.name == "__init__" or method.name.endswith("_locked"):
            return []
        findings = []

        def is_lock_ctx(expr) -> bool:
            return (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in locks)

        def visit(node, held: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held or any(is_lock_ctx(item.context_expr)
                                    for item in node.items)
                for item in node.items:
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, inner)
                return
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded and not held):
                findings.append(self.finding(
                    module, node,
                    f"{class_name}.{method.name} touches "
                    f"self.{node.attr} outside 'with self."
                    f"{' / self.'.join(locks)}'; guarded state needs "
                    f"the lock (or a *_locked helper called under "
                    f"it)"))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for child in method.body:
            visit(child, False)
        return findings


class FloatEqualityRule(Rule):
    """REP005 — no ``==``/``!=`` against non-zero float literals.

    Exact equality on floats is only meaningful for the bit-identity
    pins in the test suite (which is not linted) and for exact-zero
    guards of degenerate inputs (``denom == 0.0`` — a value that is
    *assigned* zero, not computed near it), which stay allowed.
    Everything else wants ``math.isclose``/``np.isclose`` or an
    explicit tolerance.
    """

    rule_id = "REP005"
    severity = SEVERITY_WARNING
    summary = ("no ==/!= against non-zero float literals; use "
               "math.isclose or an explicit tolerance")

    @staticmethod
    def _nonzero_float(node) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                        ast.USub):
            node = node.operand
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, float)
                and node.value != 0.0)

    def check_module(self, module: ModuleSource) -> list[Finding]:
        if module.tree is None:
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(self._nonzero_float(side) for side in operands):
                    findings.append(self.finding(
                        module, node,
                        "float equality against a non-zero literal is "
                        "representation-dependent; use math.isclose "
                        "(exact-zero guards are exempt)"))
                    break
        return findings
