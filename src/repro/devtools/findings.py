"""Finding records and suppression parsing for the invariant linter.

A :class:`Finding` is one rule violation at one source location —
immutable, ordered by location for stable reports, and serialisable
for the JSON reporter and the baseline file.  The *fingerprint* of a
finding deliberately excludes line and column numbers: a baseline
entry must keep matching its grandfathered finding while unrelated
edits shift the file around it.

Suppressions are in-source annotations::

    risky_call()  # repro: lint-ignore[REP001] seeded upstream by caller

or, for lines too long to carry a trailing comment, in a comment block
immediately above (the suppression covers the first code line after
the block, so the reason may continue over several comment lines)::

    # repro: lint-ignore[REP002] supervision boundary must catch all
    # worker failures to classify them
    except Exception as exc:

Every suppression names the rule(s) it silences (comma-separated) and
carries a non-empty reason; an unknown rule id or a missing reason is
itself a finding (``REP000``), so suppressions cannot rot silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "Suppression",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "scan_suppressions",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Rule id reserved for the engine itself: malformed suppressions and
#: files that do not parse.
META_RULE = "REP000"

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$")
_RULE_ID_RE = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: ``path:line:col`` plus rule id and message."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def fingerprint(self) -> dict:
        """The location-independent identity used by baseline matching."""
        return {"rule": self.rule, "path": self.path,
                "message": self.message}

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "severity": self.severity,
                "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``lint-ignore`` annotation.

    ``lines`` holds every source line the suppression covers: the
    comment's own line and, when the comment stands alone, the line
    below it.
    """

    line: int
    rules: tuple[str, ...]
    reason: str
    lines: tuple[int, ...] = field(default=())

    def covers(self, finding: Finding) -> bool:
        return finding.line in self.lines and finding.rule in self.rules


def scan_suppressions(relpath: str, text: str,
                      known_rules: frozenset[str],
                      ) -> tuple[list[Suppression], list[Finding]]:
    """Parse every ``lint-ignore`` annotation in ``text``.

    Returns ``(suppressions, problems)`` where ``problems`` are
    :data:`META_RULE` findings for annotations naming unknown rules or
    carrying no reason.  Malformed annotations suppress nothing.
    """
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    all_lines = text.splitlines()
    for lineno, line in enumerate(all_lines, start=1):
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        rules = tuple(part.strip() for part in
                      match.group("rules").split(",") if part.strip())
        reason = match.group("reason").strip()
        bad = [rule for rule in rules
               if not _RULE_ID_RE.match(rule) or rule not in known_rules]
        if not rules or bad:
            problems.append(Finding(
                path=relpath, line=lineno, col=match.start() + 1,
                rule=META_RULE, severity=SEVERITY_ERROR,
                message=(f"lint-ignore names unknown rule(s) "
                         f"{', '.join(bad)}" if bad else
                         "lint-ignore names no rule "
                         "(use lint-ignore[REP00x] reason)")))
            continue
        if not reason:
            problems.append(Finding(
                path=relpath, line=lineno, col=match.start() + 1,
                rule=META_RULE, severity=SEVERITY_ERROR,
                message=(f"lint-ignore[{', '.join(rules)}] carries no "
                         f"reason; every suppression must say why")))
            continue
        covered = [lineno]
        if line.lstrip().startswith("#"):
            # Comment-above form: cover the rest of the comment block
            # and the first code line after it.
            nxt = lineno  # 0-based index of the line below
            while nxt < len(all_lines) and (
                    not all_lines[nxt].strip()
                    or all_lines[nxt].lstrip().startswith("#")):
                covered.append(nxt + 1)
                nxt += 1
            if nxt < len(all_lines):
                covered.append(nxt + 1)
        suppressions.append(Suppression(line=lineno, rules=rules,
                                        reason=reason,
                                        lines=tuple(covered)))
    return suppressions, problems
