"""Spec-schema rules: snapshot drift (REP004) and provenance
round-trip completeness (REP006).

A *spec class* is found structurally: a ``@dataclass`` that defines
both ``to_dict`` and ``from_dict``.  Its field set — the class-level
annotated names — IS the wire schema: ``to_dict`` output feeds
``canonical_payload`` feeds ``spec_hash`` feeds ``JobKey``, so the
extracted fields are simultaneously the serialisation contract and the
provenance contract.

REP004 compares the extracted surface against the committed
``devtools/schema_snapshot.json``.  Any drift — a field or spec class
added, removed, or renamed — without a ``SCHEMA_VERSION`` bump is an
error: old stored payloads would deserialise differently (or hash
differently) with no migration gate.  Bumping ``SCHEMA_VERSION`` above
the snapshot's recorded value acknowledges the break; the snapshot is
then refreshed with ``repro lint --write-schema``.

REP006 checks each spec class in isolation: every field name must
appear as a string literal inside *both* ``to_dict`` and ``from_dict``.
A field missing from ``to_dict`` never reaches the canonical payload —
two specs differing only in that field would collide on ``spec_hash``
and the store would serve one's cached results for the other.  A field
missing from ``from_dict`` cannot round-trip a saved run back into a
replayable spec.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.devtools.engine import ModuleSource, Rule
from repro.devtools.findings import Finding

__all__ = ["SchemaSnapshotRule", "SpecRoundTripRule", "SpecClass",
           "extract_specs", "load_snapshot", "write_snapshot",
           "SNAPSHOT_FORMAT"]

#: Version of the snapshot *file format* (not of the spec schema).
SNAPSHOT_FORMAT = 1


class SpecClass:
    """One extracted spec dataclass: where it lives and its fields."""

    def __init__(self, module: ModuleSource, node: ast.ClassDef,
                 fields: tuple[str, ...]) -> None:
        self.module = module
        self.node = node
        self.fields = fields

    @property
    def key(self) -> str:
        return f"{self.module.relpath}::{self.node.name}"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else \
            getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


def _methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {item.name: item for item in node.body
            if isinstance(item, ast.FunctionDef)}


def _class_fields(node: ast.ClassDef) -> tuple[str, ...]:
    fields = []
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and \
                isinstance(item.target, ast.Name):
            name = item.target.id
            annotation = ast.unparse(item.annotation)
            if not name.startswith("_") and "ClassVar" not in annotation:
                fields.append(name)
    return tuple(fields)


def _spec_classes(module: ModuleSource) -> list[SpecClass]:
    if module.tree is None:
        return []
    found = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and _is_dataclass(node):
            methods = _methods(node)
            if "to_dict" in methods and "from_dict" in methods:
                found.append(SpecClass(module, node,
                                       _class_fields(node)))
    return found


def _schema_version(module: ModuleSource) -> int | None:
    """Module-level ``SCHEMA_VERSION = <int>`` constant, if any."""
    if module.tree is None:
        return None
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "SCHEMA_VERSION" and \
                        isinstance(node.value, ast.Constant) and \
                        isinstance(node.value.value, int):
                    return node.value.value
    return None


def extract_specs(modules: list[ModuleSource]
                  ) -> tuple[dict[str, SpecClass], int | None]:
    """All spec classes in ``modules`` plus the max ``SCHEMA_VERSION``."""
    specs: dict[str, SpecClass] = {}
    version: int | None = None
    for module in modules:
        for spec in _spec_classes(module):
            specs[spec.key] = spec
        declared = _schema_version(module)
        if declared is not None:
            version = declared if version is None else max(version,
                                                           declared)
    return specs, version


def snapshot_payload(specs: dict[str, SpecClass],
                     version: int | None) -> dict:
    return {
        "format": SNAPSHOT_FORMAT,
        "schema_version": version,
        "specs": {key: sorted(spec.fields)
                  for key, spec in sorted(specs.items())},
    }


def load_snapshot(path: str | Path) -> dict | None:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def write_snapshot(path: str | Path, modules: list[ModuleSource]
                   ) -> dict:
    specs, version = extract_specs(modules)
    payload = snapshot_payload(specs, version)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
    return payload


class SchemaSnapshotRule(Rule):
    """REP004 — spec surface must match the committed snapshot.

    Drift is acceptable exactly when ``SCHEMA_VERSION`` was bumped
    above the snapshot's recorded value; the snapshot is then
    refreshed via ``repro lint --write-schema``.
    """

    rule_id = "REP004"
    summary = ("spec dataclass fields must match devtools/"
               "schema_snapshot.json or bump SCHEMA_VERSION")

    def __init__(self, snapshot_path: str | Path) -> None:
        self.snapshot_path = Path(snapshot_path)

    def check_project(self, modules: list[ModuleSource]
                      ) -> list[Finding]:
        specs, version = extract_specs(modules)
        if not specs:
            return []
        snapshot = load_snapshot(self.snapshot_path)
        anchor = min(specs.values(), key=lambda s: s.key)
        if snapshot is None:
            return [Finding(
                path=anchor.module.relpath, line=1, col=1,
                rule=self.rule_id, severity=self.severity,
                message=(f"schema snapshot {self.snapshot_path.name} "
                         f"is missing; generate it with "
                         f"'repro lint --write-schema'"))]
        old_specs: dict = snapshot.get("specs", {})
        old_version = snapshot.get("schema_version")
        current = {key: sorted(spec.fields)
                   for key, spec in specs.items()}
        if current == old_specs:
            return []
        if version is not None and old_version is not None \
                and version > old_version:
            # Drift acknowledged by a SCHEMA_VERSION bump: quiet.  The
            # next --write-schema run re-anchors the snapshot at the
            # new version and checking resumes from there.
            return []
        return self._drift_findings(specs, current, old_specs,
                                    old_version, anchor)

    def _drift_findings(self, specs, current, old_specs, old_version,
                        anchor) -> list[Finding]:
        findings = []

        def drift(spec_or_none, key, detail):
            if spec_or_none is not None:
                path = spec_or_none.module.relpath
                line = spec_or_none.node.lineno
            else:
                path, line = anchor.module.relpath, 1
            findings.append(Finding(
                path=path, line=line, col=1, rule=self.rule_id,
                severity=self.severity,
                message=(f"{key.split('::')[-1]}: {detail} without a "
                         f"SCHEMA_VERSION bump (snapshot records "
                         f"schema_version={old_version}); old stored "
                         f"payloads would not round-trip — bump "
                         f"SCHEMA_VERSION and re-run with "
                         f"--write-schema")))

        for key in sorted(set(current) | set(old_specs)):
            if key not in old_specs:
                drift(specs[key], key, "spec class added")
            elif key not in current:
                drift(None, key, "spec class removed")
            elif current[key] != old_specs[key]:
                added = sorted(set(current[key]) - set(old_specs[key]))
                removed = sorted(set(old_specs[key]) - set(current[key]))
                parts = []
                if added:
                    parts.append(f"field(s) added: {', '.join(added)}")
                if removed:
                    parts.append(
                        f"field(s) removed: {', '.join(removed)}")
                drift(specs[key], key, "; ".join(parts))
        return findings


class SpecRoundTripRule(Rule):
    """REP006 — every spec field feeds serialisation and provenance.

    Each annotated field of a spec dataclass must appear as a string
    literal in both ``to_dict`` (else it never reaches
    ``canonical_payload``/``spec_hash`` and distinct specs collide in
    the store) and ``from_dict`` (else saved runs cannot be replayed).
    """

    rule_id = "REP006"
    summary = ("every spec field must appear in to_dict AND from_dict "
               "so it feeds spec_hash/JobKey provenance")

    @staticmethod
    def _string_literals(func: ast.FunctionDef) -> set[str]:
        return {node.value for node in ast.walk(func)
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)}

    def check_module(self, module: ModuleSource) -> list[Finding]:
        findings = []
        for spec in _spec_classes(module):
            methods = _methods(spec.node)
            to_dict = self._string_literals(methods["to_dict"])
            from_dict = self._string_literals(methods["from_dict"])
            for name in spec.fields:
                missing = [label for label, seen in
                           (("to_dict", to_dict),
                            ("from_dict", from_dict))
                           if name not in seen]
                if missing:
                    findings.append(self.finding(
                        module, spec.node,
                        f"{spec.node.name}.{name} does not appear in "
                        f"{' or '.join(missing)}; fields absent from "
                        f"to_dict never reach canonical_payload/"
                        f"spec_hash (silent cache collisions), fields "
                        f"absent from from_dict cannot replay"))
        return findings
