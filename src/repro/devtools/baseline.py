"""Committed baseline of grandfathered findings.

A baseline entry is a finding *fingerprint* — rule, path, message, no
line numbers — so it keeps matching its finding while unrelated edits
move the file around it.  Semantics are deliberately one-way:

- A finding matching a baseline entry is *baselined*: reported
  separately, does not fail the gate.
- A baseline entry matching no finding is *stale*: reported so the
  file can only shrink.  Re-running ``--write-baseline`` drops stale
  entries; it never resurrects them.
- New findings never enter the baseline implicitly — only an explicit
  ``--write-baseline`` run (a reviewed diff to a committed file) can.

Policy (see :mod:`repro.devtools`): intentional, permanent exemptions
belong in a ``lint-ignore`` comment next to the code with a reason;
the baseline is only for *debt* — real findings scheduled to be fixed.
This repo's committed baseline is empty and should stay that way.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.findings import Finding

__all__ = ["Baseline", "BASELINE_FORMAT"]

BASELINE_FORMAT = 1


class Baseline:
    """A set of grandfathered finding fingerprints."""

    def __init__(self, entries: list[dict] | None = None,
                 path: str | Path | None = None) -> None:
        self.entries = list(entries or [])
        self.path = Path(path) if path is not None else None

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load from ``path``; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        return cls(entries=payload.get("findings", []), path=path)

    def apply(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """Split ``findings`` into ``(active, baselined, stale)``.

        Each baseline entry absorbs every finding sharing its
        fingerprint (a grandfathered pattern may occur on several
        lines of the same file); ``stale`` is the entries that
        absorbed nothing.
        """
        keys = {json.dumps(entry, sort_keys=True): entry
                for entry in self.entries}
        active: list[Finding] = []
        baselined: list[Finding] = []
        used: set[str] = set()
        for finding in findings:
            key = json.dumps(finding.fingerprint(), sort_keys=True)
            if key in keys:
                used.add(key)
                baselined.append(finding)
            else:
                active.append(finding)
        stale = [entry for key, entry in keys.items()
                 if key not in used]
        return active, baselined, stale

    @staticmethod
    def write(path: str | Path, findings: list[Finding]) -> dict:
        """Write a fresh baseline covering exactly ``findings``."""
        fingerprints = sorted(
            {json.dumps(f.fingerprint(), sort_keys=True)
             for f in findings})
        payload = {"format": BASELINE_FORMAT,
                   "findings": [json.loads(fp) for fp in fingerprints]}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return payload
