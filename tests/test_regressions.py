"""Regression tests for the calibration-statistics and sampling bugfixes.

Each test here pins one fixed defect:

- ``run_calibration`` used the population std (ddof=0) over a handful of
  blank repeats, biasing ``blank_std`` low and every LOD optimistic;
- ``CalibrationCurve.linear_range`` swallowed *every* exception around
  ``limit_of_detection()``, hiding configuration bugs;
- ``AcquisitionChain.measure_constant`` truncated ``duration * fs`` and
  dropped the final sample for non-integer products;
- time axes were built two different ways (``ceil``-based ``linspace``
  vs ``round``-based ``arange``), disagreeing by one sample and a dt
  rescale for non-integer ``duration * sample_rate``;
- the per-sample mux settling loop in ``digitize`` is now vectorised and
  must match the scalar mux model it replaced.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.calibration import CalibrationPoint, run_calibration
from repro.data.catalog import bench_chain
from repro.electronics.mux import Multiplexer
from repro.electronics.waveform import (
    ConstantWaveform,
    TriangleWaveform,
    uniform_sample_times,
)
from repro.errors import CalibrationError
from repro.measurement.chronoamperometry import Chronoamperometry
from repro.measurement.voltammetry import CyclicVoltammetry


class TestBlankStdUsesSampleEstimator:
    def test_between_repeat_scatter_is_ddof1(self):
        blanks = iter([(0.0, 0.0), (1.0, 0.0), (2.0, 0.0),
                       (3.0, 0.0), (4.0, 0.0)])

        def signal_at(c):
            if c == 0.0:
                return next(blanks)
            return (2.0 * c, 0.0)

        curve = run_calibration(signal_at, [1.0, 2.0, 3.0], blank_repeats=5)
        expected = float(np.std([0.0, 1.0, 2.0, 3.0, 4.0], ddof=1))
        assert curve.blank_std == pytest.approx(expected, rel=1e-12)
        # The population estimator would have been sqrt(2) — strictly
        # smaller, i.e. the old optimistic bias.
        assert curve.blank_std > float(np.std([0.0, 1.0, 2.0, 3.0, 4.0]))

    def test_within_run_std_still_combined(self):
        def signal_at(c):
            return (2.0 * c, 3.0e-9) if c else (0.0, 3.0e-9)

        curve = run_calibration(signal_at, [1.0, 2.0, 3.0], blank_repeats=4)
        # Identical blank means: only the within-run term remains.
        assert curve.blank_std == pytest.approx(3.0e-9, rel=1e-12)


class TestLinearRangeErrorPropagation:
    def _curve(self):
        points = [CalibrationPoint(float(c), 1.0e-7 * c)
                  for c in (0.5, 1.0, 2.0, 4.0)]
        from repro.analysis.calibration import CalibrationCurve
        return CalibrationCurve(points, blank_mean=0.0, blank_std=1.0e-10)

    def test_calibration_error_from_lod_is_tolerated(self):
        curve = self._curve()

        def broken_lod():
            raise CalibrationError("no usable blank")

        curve.limit_of_detection = broken_lod
        low, high = curve.linear_range()
        assert low == pytest.approx(0.5)
        assert high == pytest.approx(4.0)

    def test_flat_low_end_falls_back_to_measured_floor(self):
        # A low end quantized flat makes limit_of_detection raise a
        # plain AnalysisError (zero sensitivity); linear_range must
        # fall back to the measured floor, not crash.
        from repro.analysis.calibration import CalibrationCurve
        signals = [5.0, 5.2, 4.9, 5.0, 6.0, 7.0, 8.0]
        points = [CalibrationPoint(float(c), s) for c, s in
                  zip((0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0), signals)]
        curve = CalibrationCurve(points, blank_mean=5.0, blank_std=1.0)
        low, high = curve.linear_range()
        assert low == pytest.approx(0.5)

    def test_unexpected_error_from_lod_propagates(self):
        curve = self._curve()

        def broken_lod():
            raise RuntimeError("configuration bug")

        curve.limit_of_detection = broken_lod
        with pytest.raises(RuntimeError, match="configuration bug"):
            curve.linear_range()


class TestMeasureConstantSampleCount:
    def _count_samples(self, duration, sample_rate):
        chain = bench_chain(seed=5)
        captured = {}
        original = chain.digitize

        def spy(times, currents, **kwargs):
            captured["n"] = np.asarray(times).size
            return original(times, currents, **kwargs)

        chain.digitize = spy
        chain.measure_constant(1.0e-6, duration=duration,
                               sample_rate=sample_rate)
        return captured["n"]

    def test_non_integer_product_rounds_instead_of_truncating(self):
        # 0.95 s at 10 Hz is 9.5 samples: the seed truncated to 9.
        assert self._count_samples(0.95, 10.0) == 10

    def test_integer_product_unchanged(self):
        assert self._count_samples(2.0, 10.0) == 20

    def test_minimum_of_eight_samples(self):
        assert self._count_samples(0.2, 10.0) == 8


class TestUnifiedTimeAxis:
    def test_waveform_and_cv_share_one_axis(self, cyp_cell):
        wf = TriangleWaveform(e_start=0.0, e_vertex=-0.35, scan_rate=0.02)
        cv = CyclicVoltammetry(wf, sample_rate=10.0)
        times, _, _, _ = cv.simulate_true_current(cyp_cell, "WE4")
        assert np.array_equal(times, wf.sample_times(10.0))

    def test_chronoamperometry_uses_shared_axis(self, glucose_cell):
        proto = Chronoamperometry(e_setpoint=0.55, duration=7.3,
                                  sample_rate=5.0)
        times, _ = proto.simulate_true_current(glucose_cell, "WE1")
        assert np.array_equal(times, uniform_sample_times(7.3, 5.0))

    def test_non_integer_product_rounds_with_exact_dt(self):
        # duration * fs = 10.4: the seed's ceil-based linspace produced
        # 12 samples with a rescaled dt; round-based arange gives 11
        # samples at exactly 1/fs.
        times = uniform_sample_times(1.04, 10.0)
        assert times.size == 11
        np.testing.assert_allclose(np.diff(times), 0.1, rtol=1e-12)
        assert ConstantWaveform(0.1, 1.04).sample_times(10.0).size == 11

    def test_never_fewer_than_two_samples(self):
        assert uniform_sample_times(1.0e-3, 10.0).size == 2


class TestVectorisedMuxSettling:
    def _schedule(self):
        mux = Multiplexer(n_channels=4, settling_time=0.05)
        schedule = mux.round_robin(["a", "b", "c"], dwell=0.4)
        return mux, schedule

    def test_times_since_switch_matches_scalar(self):
        _, schedule = self._schedule()
        times = np.linspace(0.0, 3.7, 400)
        vector = schedule.times_since_switch(times)
        scalar = np.asarray([schedule.time_since_switch(float(t))
                             for t in times])
        assert np.array_equal(vector, scalar)

    def test_settling_and_injection_match_scalar(self):
        mux, schedule = self._schedule()
        since = schedule.times_since_switch(np.linspace(0.0, 2.0, 200))
        factors = mux.settling_factors(since)
        spikes = mux.injection_currents(since)
        for k, t in enumerate(since):
            assert factors[k] == pytest.approx(mux.settling_factor(float(t)),
                                               rel=1e-14, abs=1e-300)
            assert spikes[k] == pytest.approx(
                mux.injection_current(float(t)), rel=1e-14, abs=1e-300)

    def test_gap_maps_to_zero(self):
        from repro.electronics.mux import MuxSchedule, MuxSlot
        schedule = MuxSchedule((MuxSlot("a", 0.0, 0.3),
                                MuxSlot("b", 0.5, 0.8)))
        # 0.4 falls in the gap between slots.
        assert schedule.time_since_switch(0.4) == 0.0
        out = schedule.times_since_switch(np.asarray([0.1, 0.4, 0.6]))
        assert out[1] == 0.0
        assert out[0] == pytest.approx(0.1)
        assert out[2] == pytest.approx(0.1)

    def test_digitize_applies_vectorised_settling(self):
        from repro.electronics.chain import AcquisitionChain
        mux, schedule = self._schedule()
        chain = AcquisitionChain(mux=mux, baseline_drift_rate=0.0)
        times = np.arange(40) / 20.0
        currents = np.full(40, 5.0e-7)
        rng = np.random.default_rng(9)
        reading = chain.digitize(times, currents, schedule=schedule, rng=rng)
        since = schedule.times_since_switch(times)
        expected = (currents * mux.settling_factors(since)
                    + mux.injection_currents(since))
        noise = chain.noise_model_for(None).sample(
            np.random.default_rng(9), times.size, 20.0)
        assert np.allclose(reading.input_current, expected + noise,
                           rtol=1e-12, atol=1e-15)
