"""Redox laws: Nernst, oxidation-efficiency wave, Butler-Volmer."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chem import constants as C
from repro.chem.redox import (
    ButlerVolmerKinetics,
    OxidationEfficiency,
    RedoxCouple,
    butler_volmer_current_density,
    nernst_potential,
    nernst_ratio,
)
from repro.errors import ChemistryError

potentials = st.floats(min_value=-1.0, max_value=1.0)


class TestNernst:
    def test_equal_concentrations_give_formal_potential(self):
        assert nernst_potential(0.2, 1, 1.0) == pytest.approx(0.2)

    def test_ten_to_one_shifts_59mV(self):
        # The classic 59 mV/decade at 25 C for n=1.
        e = nernst_potential(0.0, 1, 10.0)
        assert e == pytest.approx(0.0592, abs=5e-4)

    def test_n_2_halves_the_slope(self):
        e = nernst_potential(0.0, 2, 10.0)
        assert e == pytest.approx(0.0296, abs=5e-4)

    @given(potentials, potentials)
    def test_ratio_monotone_in_potential(self, e1, e2):
        r1 = nernst_ratio(e1, 0.0, 1)
        r2 = nernst_ratio(e2, 0.0, 1)
        if e1 < e2:
            assert r1 <= r2

    @given(potentials)
    def test_ratio_round_trip(self, e):
        ratio = nernst_ratio(e, 0.1, 1)
        back = nernst_potential(0.1, 1, ratio)
        assert back == pytest.approx(e, abs=1e-9)

    def test_extreme_potentials_do_not_overflow(self):
        assert math.isfinite(nernst_ratio(50.0, 0.0, 4))
        assert nernst_ratio(-50.0, 0.0, 4) >= 0.0


class TestRedoxCouple:
    def test_reduced_fraction_limits(self):
        couple = RedoxCouple("test", e_formal=-0.4, n_electrons=1)
        assert couple.reduced_fraction(-1.5) == pytest.approx(1.0, abs=1e-6)
        assert couple.reduced_fraction(0.8) == pytest.approx(0.0, abs=1e-6)
        assert couple.reduced_fraction(-0.4) == pytest.approx(0.5)

    def test_invalid_n_rejected(self):
        with pytest.raises(ChemistryError):
            RedoxCouple("bad", e_formal=0.0, n_electrons=0)


class TestOxidationEfficiency:
    def test_half_at_half_wave(self):
        wave = OxidationEfficiency(e_half=0.45)
        assert wave.at(0.45) == pytest.approx(0.5)

    def test_saturates_high(self):
        wave = OxidationEfficiency(e_half=0.45)
        assert wave.at(1.5) == pytest.approx(1.0, abs=1e-6)
        assert wave.at(-0.5) == pytest.approx(0.0, abs=1e-6)

    def test_potential_for_efficiency_inverts(self):
        wave = OxidationEfficiency(e_half=0.45, slope=0.0257)
        for fraction in (0.05, 0.5, 0.95):
            e = wave.potential_for_efficiency(fraction)
            assert wave.at(e) == pytest.approx(fraction, rel=1e-6)

    def test_95_percent_point_is_about_3_slopes_up(self):
        wave = OxidationEfficiency(e_half=0.45, slope=0.0257)
        e95 = wave.potential_for_efficiency(0.95)
        assert e95 - 0.45 == pytest.approx(0.0257 * math.log(19.0), rel=1e-9)

    def test_shifted(self):
        wave = OxidationEfficiency(e_half=0.45)
        catalysed = wave.shifted(-0.10)
        assert catalysed.e_half == pytest.approx(0.35)
        # A catalytic shift means more signal at the same potential.
        assert catalysed.at(0.40) > wave.at(0.40)

    def test_vectorized(self):
        wave = OxidationEfficiency(e_half=0.45)
        e = np.linspace(0.0, 0.9, 10)
        eta = wave.at(e)
        assert eta.shape == e.shape
        assert np.all(np.diff(eta) > 0.0)  # strictly rising wave

    def test_invalid_fraction_rejected(self):
        wave = OxidationEfficiency(e_half=0.45)
        with pytest.raises(ChemistryError):
            wave.potential_for_efficiency(1.0)


class TestButlerVolmer:
    def test_zero_current_at_equilibrium(self):
        # Equal ox/red at the formal potential: no net current.
        j = butler_volmer_current_density(0.0, 1e-5, 1.0, 1.0)
        assert j == pytest.approx(0.0, abs=1e-12)

    def test_cathodic_negative(self):
        # Well below E0 with only Ox present: reduction, negative current.
        j = butler_volmer_current_density(-0.3, 1e-5, 1.0, 0.0)
        assert j < 0.0

    def test_anodic_positive(self):
        j = butler_volmer_current_density(+0.3, 1e-5, 0.0, 1.0)
        assert j > 0.0

    def test_no_species_no_current(self):
        j = butler_volmer_current_density(-0.3, 1e-5, 0.0, 0.0)
        assert j == 0.0

    @given(st.floats(min_value=-0.5, max_value=-0.05))
    def test_cathodic_grows_with_overpotential(self, eta):
        j1 = butler_volmer_current_density(eta, 1e-5, 1.0, 0.0)
        j2 = butler_volmer_current_density(eta - 0.05, 1e-5, 1.0, 0.0)
        assert j2 < j1 < 0.0

    def test_rate_constants_cross_at_formal_potential(self):
        kinetics = ButlerVolmerKinetics(
            RedoxCouple("t", e_formal=-0.25, n_electrons=1), k0=1e-5)
        kf, kb = kinetics.rate_constants(-0.25)
        assert kf == pytest.approx(1e-5)
        assert kb == pytest.approx(1e-5)

    def test_rate_constants_obey_nernst(self):
        # kf/kb = exp(-n f (E - E0)) — detailed balance.
        kinetics = ButlerVolmerKinetics(
            RedoxCouple("t", e_formal=-0.25, n_electrons=2), k0=1e-5)
        e = -0.30
        kf, kb = kinetics.rate_constants(e)
        expected = math.exp(-2 * C.F_OVER_RT * (e - (-0.25)))
        assert kf / kb == pytest.approx(expected, rel=1e-9)

    def test_alpha_bounds(self):
        with pytest.raises(ChemistryError):
            ButlerVolmerKinetics(RedoxCouple("t", 0.0, 1), k0=1e-5, alpha=1.0)
