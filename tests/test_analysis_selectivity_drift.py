"""Selectivity matrices and drift/recalibration tools."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.drift import GainDriftModel, OnePointRecalibration
from repro.analysis.selectivity import cross_response_matrix
from repro.data.catalog import paper_panel_cell
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def panel_matrix():
    cell = paper_panel_cell({"glucose": 0.0})
    return cross_response_matrix(
        cell, 0.550,
        species=("glucose", "lactate", "glutamate", "dopamine"),
        concentration=1.0)


class TestCrossResponse:
    def test_diagonal_dominates(self, panel_matrix):
        assert panel_matrix.response("WE1", "glucose") > 0.0
        assert abs(panel_matrix.response("WE1", "lactate")) < 1e-11

    def test_selectivity_ratio_large(self, panel_matrix):
        ratio = panel_matrix.selectivity("WE1", "lactate")
        assert ratio > 1e3

    def test_dopamine_is_worst_interferent(self, panel_matrix):
        name, ratio = panel_matrix.worst_interferent("WE1")
        assert name == "dopamine"
        assert ratio < 1e3  # direct oxidation is a real interference

    def test_blank_like_electrode_has_no_selectivity(self, panel_matrix):
        # WE4 (CYP) has targets, but they were not part of this species
        # set; selectivity against its own missing target must raise.
        with pytest.raises(AnalysisError):
            panel_matrix.selectivity("WE4", "glucose")

    def test_chamber_restored_after_measurement(self):
        cell = paper_panel_cell({"glucose": 2.0})
        cross_response_matrix(cell, 0.55, species=("glucose",))
        assert cell.chamber.bulk("glucose") == pytest.approx(2.0)

    def test_render_contains_markers(self, panel_matrix):
        text = panel_matrix.render()
        assert "*" in text
        assert "WE1" in text

    def test_unknown_pair_raises(self, panel_matrix):
        with pytest.raises(AnalysisError):
            panel_matrix.response("WE1", "caffeine")


class TestGainDrift:
    def test_no_drift_when_rate_zero(self):
        model = GainDriftModel(rate=0.0)
        assert model.gain(1e7) == 1.0
        assert math.isinf(model.time_to_gain(0.5))

    def test_per_day_constructor(self):
        model = GainDriftModel.per_day(0.04)
        assert model.gain(86400.0) == pytest.approx(0.96, rel=1e-9)

    def test_membrane_suppression_slows_drift(self):
        bare = GainDriftModel.per_day(0.04)
        coated = GainDriftModel.per_day(0.04, suppression=0.8)
        assert coated.gain(7 * 86400.0) > bare.gain(7 * 86400.0)

    def test_time_to_gain_inverts(self):
        model = GainDriftModel.per_day(0.04)
        t = model.time_to_gain(0.9)
        assert model.gain(t) == pytest.approx(0.9, rel=1e-9)

    def test_gain_never_negative(self):
        model = GainDriftModel.per_day(0.5)
        assert model.gain(365 * 86400.0) > 0.0

    def test_validation(self):
        with pytest.raises(Exception):
            GainDriftModel(rate=-1.0)
        with pytest.raises(AnalysisError):
            GainDriftModel(rate=0.1, suppression=1.0)
        with pytest.raises(AnalysisError):
            GainDriftModel.per_day(1.0)


class TestOnePointRecalibration:
    def test_inverts_initial_calibration(self):
        cal = OnePointRecalibration(slope=2e-8, intercept=1e-9)
        signal = 2e-8 * 3.0 + 1e-9
        assert cal.concentration(signal) == pytest.approx(3.0)

    def test_recalibration_fixes_gain_drift(self):
        cal = OnePointRecalibration(slope=2e-8)
        # Sensor lost 20 % of its gain; a reference point re-anchors.
        drifted_signal = 0.8 * 2e-8 * 4.0
        cal.recalibrate(drifted_signal, true_concentration=4.0)
        assert cal.gain_estimate == pytest.approx(0.8)
        # Subsequent readings with the drifted sensor are correct again.
        assert cal.concentration(0.8 * 2e-8 * 2.5) == pytest.approx(2.5)
        assert cal.recalibration_count == 1

    def test_degenerate_recalibration_rejected(self):
        cal = OnePointRecalibration(slope=2e-8, intercept=1e-9)
        with pytest.raises(AnalysisError, match="degenerate"):
            cal.recalibrate(1e-9, true_concentration=3.0)

    def test_sign_flip_rejected(self):
        cal = OnePointRecalibration(slope=2e-8)
        with pytest.raises(AnalysisError, match="sign"):
            cal.recalibrate(-1e-8, true_concentration=3.0)

    def test_zero_slope_rejected(self):
        with pytest.raises(AnalysisError):
            OnePointRecalibration(slope=0.0)
