"""Chronoamperometry, cyclic voltammetry, and the multiplexed panel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.analytic import randles_sevcik_peak_current
from repro.chem.solution import Chamber, InjectionSchedule
from repro.data.catalog import bench_chain, integrated_chain
from repro.electronics.waveform import TriangleWaveform
from repro.errors import ProtocolError
from repro.measurement.chronoamperometry import Chronoamperometry
from repro.measurement.panel import PanelProtocol
from repro.measurement.peaks import find_peaks
from repro.measurement.trace import Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry


class TestChronoamperometry:
    def test_settles_to_cell_steady_state(self, glucose_cell):
        proto = Chronoamperometry(e_setpoint=0.55, duration=80.0,
                                  sample_rate=5.0)
        times, currents = proto.simulate_true_current(glucose_cell, "WE1")
        steady = glucose_cell.measured_current("WE1", 0.55)
        assert currents[-1] == pytest.approx(steady, rel=0.03)

    def test_injection_raises_current(self, glucose_cell):
        glucose_cell.chamber.set_bulk("glucose", 0.0)
        proto = Chronoamperometry(
            e_setpoint=0.55, duration=90.0, sample_rate=5.0,
            injections=InjectionSchedule.single(10.0, "glucose", 2.0))
        times, currents = proto.simulate_true_current(glucose_cell, "WE1")
        before = currents[times < 9.0]
        after = currents[-10:]
        assert np.mean(after) > 10.0 * max(np.mean(before), 1e-12)

    def test_t90_near_paper_30s(self, glucose_cell):
        # Fig. 3: a macro glucose strip settles in about 30 s.
        glucose_cell.chamber.set_bulk("glucose", 0.0)
        proto = Chronoamperometry(
            e_setpoint=0.55, duration=120.0, sample_rate=5.0,
            injections=InjectionSchedule.single(5.0, "glucose", 2.0))
        times, currents = proto.simulate_true_current(glucose_cell, "WE1")
        steady = np.mean(currents[-25:])
        crossed = np.flatnonzero(currents >= 0.9 * steady)
        t90 = times[crossed[0]] - 5.0
        assert 15.0 <= t90 <= 45.0

    def test_caller_chamber_not_mutated(self, glucose_cell):
        glucose_cell.chamber.set_bulk("glucose", 0.0)
        proto = Chronoamperometry(
            e_setpoint=0.55, duration=30.0, sample_rate=5.0,
            injections=InjectionSchedule.single(5.0, "glucose", 2.0))
        proto.simulate_true_current(glucose_cell, "WE1")
        assert glucose_cell.chamber.bulk("glucose") == 0.0

    def test_run_through_chain(self, glucose_cell, rng):
        proto = Chronoamperometry(e_setpoint=0.55, duration=30.0,
                                  sample_rate=5.0)
        result = proto.run(glucose_cell, "WE1", bench_chain(), rng=rng)
        assert result.trace.n_samples == 151
        assert result.e_applied == pytest.approx(0.55, abs=1e-3)
        assert result.trace.tail_mean() == pytest.approx(
            glucose_cell.measured_current("WE1", 0.55), rel=0.1)

    def test_injection_outside_duration_rejected(self):
        with pytest.raises(ProtocolError):
            Chronoamperometry(
                e_setpoint=0.55, duration=5.0,
                injections=InjectionSchedule.single(10.0, "glucose", 1.0))

    def test_direct_oxidizer_contributes(self, glucose_cell):
        glucose_cell.chamber.set_bulk("dopamine", 0.5)
        proto = Chronoamperometry(e_setpoint=0.55, duration=30.0,
                                  sample_rate=5.0)
        times, currents = proto.simulate_true_current(glucose_cell, "WE1")
        glucose_cell.chamber.set_bulk("dopamine", 0.0)
        times2, currents2 = proto.simulate_true_current(glucose_cell, "WE1")
        assert currents[-1] > currents2[-1]


class TestCyclicVoltammetry:
    def test_peak_positions_near_formal_potentials(self, cyp_cell):
        wf = TriangleWaveform(e_start=0.0, e_vertex=-0.7, scan_rate=0.02)
        cv = CyclicVoltammetry(wf, sample_rate=10.0)
        t, p, s, i = cv.simulate_true_current(cyp_cell, "WE4")
        vg = Voltammogram(times=t, potentials=p, current=i, sweep_sign=s,
                          scan_rate=0.02)
        peaks = find_peaks(vg, cathodic=True, min_height=5e-9)
        assert len(peaks) == 2
        # n=2 quasi-reversible: peaks a few tens of mV below E0.
        assert peaks[0].potential == pytest.approx(-0.250, abs=0.05)
        assert peaks[1].potential == pytest.approx(-0.400, abs=0.05)

    def test_peak_height_scales_with_sqrt_scan_rate(self, cyp_cell):
        heights = []
        for rate in (0.005, 0.020):
            wf = TriangleWaveform(e_start=0.0, e_vertex=-0.7, scan_rate=rate)
            cv = CyclicVoltammetry(wf, sample_rate=max(10.0, rate * 500))
            t, p, s, i = cv.simulate_true_current(cyp_cell, "WE4")
            vg = Voltammogram(times=t, potentials=p, current=i,
                              sweep_sign=s, scan_rate=rate)
            peaks = find_peaks(vg, cathodic=True, min_height=5e-9)
            heights.append(max(pk.height for pk in peaks))
        assert heights[1] / heights[0] == pytest.approx(2.0, rel=0.25)

    def test_matches_randles_sevcik_for_reversible_couple(self, cyp_cell):
        # With a large k0 the simulated peak must approach the R-S value.
        we = cyp_cell.working_electrodes[0]
        channel = we.probe.channel_for("aminopyrine")
        bulk = cyp_cell.chamber.bulk("aminopyrine")
        gain = we.functionalization.signal_gain
        c_eff = (bulk * channel.efficiency * gain
                 * channel.km / (channel.km + bulk))
        from repro.chem.species import get_species
        expected = randles_sevcik_peak_current(
            2, we.area, c_eff, get_species("aminopyrine").diffusivity, 0.02)
        wf = TriangleWaveform(e_start=-0.1, e_vertex=-0.7, scan_rate=0.02)
        cv = CyclicVoltammetry(wf, sample_rate=20.0)
        t, p, s, i = cv.simulate_true_current(cyp_cell, "WE4")
        vg = Voltammogram(times=t, potentials=p, current=i, sweep_sign=s,
                          scan_rate=0.02)
        peaks = find_peaks(vg, cathodic=True, min_height=5e-9)
        tallest = max(peaks, key=lambda pk: pk.height)
        # Quasi-reversible + charging baseline: within ~40 % of reversible.
        assert tallest.height == pytest.approx(expected, rel=0.4)

    def test_charging_background_flips_with_sweep(self, glucose_cell):
        # An oxidase electrode swept with no analyte shows +/- Cdl*A*v.
        glucose_cell.chamber.set_bulk("glucose", 0.0)
        wf = TriangleWaveform(e_start=0.0, e_vertex=-0.3, scan_rate=0.02)
        cv = CyclicVoltammetry(wf, sample_rate=10.0)
        t, p, s, i = cv.simulate_true_current(glucose_cell, "WE1")
        we = glucose_cell.working_electrodes[0]
        charging = we.electrode.charging_current(0.02)
        leak = we.electrode.leakage_current()
        mid_fwd = i[len(i) // 4]
        mid_rev = i[3 * len(i) // 4]
        assert mid_fwd == pytest.approx(-charging + leak, rel=0.1)
        assert mid_rev == pytest.approx(+charging + leak, rel=0.1)


class TestPanel:
    def test_paper_panel_recovers_all_six(self):
        from repro.data.catalog import (
            PAPER_PANEL_MID_CONCENTRATIONS,
            paper_panel_cell,
        )
        cell = paper_panel_cell()
        chain = integrated_chain("cyp_micro", n_channels=5)
        result = PanelProtocol().run(cell, chain,
                                     rng=np.random.default_rng(7))
        for target in PAPER_PANEL_MID_CONCENTRATIONS:
            assert target in result.readouts, target
        # Benz and amino share WE4 — the paper's two-drugs-one-electrode.
        assert result.readouts["benzphetamine"].we_name == "WE4"
        assert result.readouts["aminopyrine"].we_name == "WE4"
        assert result.assay_time > 0.0

    def test_signal_for_unknown_target(self):
        from repro.data.catalog import paper_panel_cell
        cell = paper_panel_cell()
        chain = integrated_chain("cyp_micro", n_channels=5)
        result = PanelProtocol(ca_dwell=30.0).run(
            cell, chain, rng=np.random.default_rng(7))
        with pytest.raises(ProtocolError, match="not measured"):
            result.signal_for("caffeine" if False else "clozapine")
