"""Peak detection, semi-differentiation, and target assignment."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import constants as C
from repro.errors import AnalysisError
from repro.measurement.peaks import (
    Peak,
    assign_peaks,
    find_peaks,
    reversible_peak_offset,
    semi_derivative,
)
from repro.measurement.trace import Voltammogram


def gaussian_cv(centers, heights, width=0.04, e_start=0.0, e_end=-0.8,
                n=400, scan_rate=0.02):
    """A synthetic cathodic leg with Gaussian reduction dips."""
    potentials = np.linspace(e_start, e_end, n)
    current = np.zeros(n)
    for center, height in zip(centers, heights):
        current -= height * np.exp(-((potentials - center) / width) ** 2)
    times = np.arange(n) * abs(e_end - e_start) / (scan_rate * n)
    sweep_sign = np.full(n, -1.0)
    return Voltammogram(times=times, potentials=potentials, current=current,
                        sweep_sign=sweep_sign, scan_rate=scan_rate)


class TestSemiDerivative:
    def test_linearity(self, rng):
        a = rng.standard_normal(200)
        b = rng.standard_normal(200)
        dt = 0.1
        lhs = semi_derivative(2.0 * a + 3.0 * b, dt)
        rhs = 2.0 * semi_derivative(a, dt) + 3.0 * semi_derivative(b, dt)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_half_derivative_of_sqrt_t_is_constant(self):
        # d^{1/2}/dt^{1/2} sqrt(t) = sqrt(pi)/2 — a classic identity.
        dt = 1e-3
        t = np.arange(1, 4000) * dt
        series = np.sqrt(t)
        out = semi_derivative(series, dt)
        assert np.median(out[2000:]) == pytest.approx(math.sqrt(math.pi) / 2,
                                                      rel=0.01)

    def test_applied_twice_is_first_derivative(self):
        # d^{1/2} d^{1/2} f = f' for smooth f (checked on a ramp).
        dt = 1e-2
        t = np.arange(4000) * dt
        ramp = 2.0 * t
        once = semi_derivative(ramp, dt)
        twice = semi_derivative(once, dt)
        assert np.median(twice[2000:]) == pytest.approx(2.0, rel=0.02)

    def test_needs_series(self):
        with pytest.raises(AnalysisError):
            semi_derivative(np.array([1.0]), 0.1)


class TestFindPeaks:
    def test_single_peak_position_and_height(self):
        cv = gaussian_cv([-0.40], [1e-6])
        peaks = find_peaks(cv, cathodic=True, min_height=1e-8)
        assert len(peaks) == 1
        assert peaks[0].potential == pytest.approx(-0.40, abs=0.005)
        assert peaks[0].height == pytest.approx(1e-6, rel=0.05)

    def test_two_peaks_sorted_by_potential(self):
        cv = gaussian_cv([-0.25, -0.55], [1e-6, 2e-6])
        peaks = find_peaks(cv, cathodic=True, min_height=1e-8)
        assert len(peaks) == 2
        assert peaks[0].potential > peaks[1].potential

    def test_threshold_suppresses_small_peaks(self):
        cv = gaussian_cv([-0.25, -0.55], [1e-6, 1e-9])
        peaks = find_peaks(cv, cathodic=True, min_height=1e-7)
        assert len(peaks) == 1

    def test_close_peaks_merge(self):
        # torsemide/diclofenac at -19/-41 mV cannot be resolved.
        cv = gaussian_cv([-0.019, -0.041], [1e-6, 1e-6], width=0.05,
                         e_start=0.3, e_end=-0.5)
        peaks = find_peaks(cv, cathodic=True, min_height=1e-8,
                           min_separation=0.03)
        assert len(peaks) == 1

    def test_semiderivative_method(self):
        cv = gaussian_cv([-0.40], [1e-6])
        peaks = find_peaks(cv, cathodic=True, min_height=1e-8,
                           method="semiderivative")
        assert len(peaks) >= 1
        best = max(peaks, key=lambda p: p.height)
        assert best.potential == pytest.approx(-0.40, abs=0.02)
        assert best.method == "semiderivative"

    def test_unknown_method_rejected(self):
        cv = gaussian_cv([-0.40], [1e-6])
        with pytest.raises(AnalysisError, match="method"):
            find_peaks(cv, method="fft")

    @given(st.floats(min_value=-0.6, max_value=-0.2),
           st.floats(min_value=1e-7, max_value=1e-5))
    @settings(max_examples=20, deadline=None)
    def test_height_proportional_quantification(self, center, height):
        cv1 = gaussian_cv([center], [height])
        cv2 = gaussian_cv([center], [2.0 * height])
        h1 = find_peaks(cv1, min_height=1e-9)[0].height
        h2 = find_peaks(cv2, min_height=1e-9)[0].height
        assert h2 / h1 == pytest.approx(2.0, rel=0.05)


class TestOffsets:
    def test_reversible_offset_magnitude(self):
        # 28.5 mV for n=1, halved for n=2.
        assert reversible_peak_offset(1) == pytest.approx(
            1.109 / C.F_OVER_RT, rel=1e-9)
        assert reversible_peak_offset(2) == pytest.approx(
            reversible_peak_offset(1) / 2.0)

    def test_formal_potential_estimate(self):
        peak = Peak(potential=-0.264, current=-1e-6, height=1e-6,
                    width=0.05, cathodic=True, method="raw")
        estimate = peak.formal_potential_estimate(2)
        assert estimate == pytest.approx(-0.264 + reversible_peak_offset(2))

    def test_semiderivative_needs_no_offset(self):
        peak = Peak(potential=-0.250, current=-1e-6, height=1e-6,
                    width=0.05, cathodic=True, method="semiderivative")
        assert peak.formal_potential_estimate(2) == pytest.approx(-0.250)


class TestAssignment:
    def _peaks(self):
        cv = gaussian_cv([-0.264, -0.414], [1e-6, 2e-6])
        return find_peaks(cv, cathodic=True, min_height=1e-8)

    def test_assigns_within_tolerance(self):
        peaks = self._peaks()
        result = assign_peaks(peaks, {"benzphetamine": -0.250,
                                      "aminopyrine": -0.400})
        assert result.all_assigned
        assert result.matches["benzphetamine"].potential == pytest.approx(
            -0.264, abs=0.01)

    def test_each_peak_used_once(self):
        peaks = self._peaks()
        # Two candidates near one peak: only the closer one matches.
        result = assign_peaks(peaks, {"a": -0.250, "b": -0.260,
                                      "c": -0.400})
        matched_peaks = {id(p) for p in result.matches.values()}
        assert len(matched_peaks) == len(result.matches)

    def test_missing_target_reported(self):
        peaks = self._peaks()
        result = assign_peaks(peaks, {"benzphetamine": -0.250,
                                      "clozapine": -0.265 + 0.5})
        assert "clozapine" in result.missing_targets
        assert not result.all_assigned

    def test_unassigned_peaks_reported(self):
        peaks = self._peaks()
        result = assign_peaks(peaks, {"benzphetamine": -0.250})
        assert len(result.unassigned_peaks) == 1
