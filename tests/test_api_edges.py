"""Edge-of-API behaviours not covered by the per-module suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import steady_state_response_time
from repro.chem.analytic import planar_response_time
from repro.chem.solution import InjectionSchedule
from repro.chem.species import get_species
from repro.core.explorer import explore
from repro.core.targets import PanelSpec, TargetSpec
from repro.data.catalog import bench_chain, integrated_chain, paper_panel_cell
from repro.errors import AnalysisError, ProtocolError
from repro.measurement.chronoamperometry import Chronoamperometry
from repro.measurement.panel import PanelProtocol
from repro.measurement.trace import Trace


class TestTransientMatchesAnalyticPrediction:
    """The numeric CA transient and the closed-form t90 must agree —
    the consistency check between repro.chem.analytic and the solver."""

    def test_t90_prediction(self, glucose_cell):
        we = glucose_cell.working_electrodes[0]
        predicted = planar_response_time(
            we.effective_nernst_layer("glucose"),
            get_species("glucose").diffusivity)
        glucose_cell.chamber.set_bulk("glucose", 0.0)
        protocol = Chronoamperometry(
            e_setpoint=0.55, duration=predicted * 4.0, sample_rate=5.0,
            injections=InjectionSchedule.single(2.0, "glucose", 2.0))
        times, currents = protocol.simulate_true_current(glucose_cell, "WE1")
        trace = Trace(times=times, current=currents)
        measured = steady_state_response_time(trace, 2.0)
        # The film consumption speeds settling slightly versus the pure
        # diffusion mode; agreement within 40 % validates both paths.
        assert measured == pytest.approx(predicted, rel=0.4)


class TestPanelProtocolValidation:
    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(Exception):
            PanelProtocol(ca_dwell=0.0)
        with pytest.raises(Exception):
            PanelProtocol(scan_rate=-0.01)
        with pytest.raises(Exception):
            PanelProtocol(peak_min_height=0.0)

    def test_assay_time_scales_with_dwell(self):
        cell_a = paper_panel_cell()
        cell_b = paper_panel_cell()
        chain = integrated_chain("cyp_micro", n_channels=5)
        short = PanelProtocol(ca_dwell=20.0).run(
            cell_a, chain, rng=np.random.default_rng(2))
        long = PanelProtocol(ca_dwell=60.0).run(
            cell_b, chain, rng=np.random.default_rng(2))
        assert long.assay_time > short.assay_time + 100.0


class TestExplorerDiagnostics:
    @pytest.fixture(scope="class")
    def result(self):
        panel = PanelSpec(
            name="edges",
            targets=(TargetSpec("benzphetamine", 0.2, 1.2,
                                required_lod=0.25),))
        return explore(panel)

    def test_violation_summary_counts(self, result):
        infeasible = [p for p in result.points if not p.feasible]
        summary = result.violation_summary()
        assert sum(summary.values()) >= len(infeasible)

    def test_front_never_empty_when_feasible_exists(self, result):
        if result.n_feasible:
            assert result.front

    def test_estimates_expose_margin(self, result):
        point = result.points[0]
        assert point.estimates.worst_lod_margin > 0.0


class TestTraceSmoothing:
    def test_preserves_mean_level(self, rng):
        values = 1.0 + 0.1 * rng.standard_normal(400)
        trace = Trace(times=np.arange(400) / 10.0, current=values)
        smooth = trace.smoothed(21)
        assert np.mean(smooth.current) == pytest.approx(np.mean(values),
                                                        rel=1e-3)
        assert np.std(smooth.current) < 0.5 * np.std(values)

    def test_window_one_is_identity(self):
        trace = Trace(times=np.arange(10.0), current=np.arange(10.0))
        assert trace.smoothed(1) is trace

    def test_even_window_rejected(self):
        trace = Trace(times=np.arange(10.0), current=np.arange(10.0))
        with pytest.raises(AnalysisError):
            trace.smoothed(4)

    def test_edges_not_dragged_to_zero(self):
        # Padding with edge values, not zeros: a constant stays constant.
        trace = Trace(times=np.arange(50.0), current=np.full(50, 3.0))
        smooth = trace.smoothed(11)
        assert np.allclose(smooth.current, 3.0)


class TestChamberAccounting:
    def test_electrolysis_consumption(self, glucose_cell):
        chamber = glucose_cell.chamber
        chamber.set_bulk("glucose", 1.0)
        moles_present = 1.0 * chamber.volume
        chamber.consume("glucose", moles_present / 2.0)
        assert chamber.bulk("glucose") == pytest.approx(0.5)


class TestBenchChainIsQuiet:
    """The laboratory chain must be quiet enough that Table III LODs
    reflect the sensors, not the instrument."""

    def test_instrument_noise_below_sensor_noise(self, glucose_cell):
        chain = bench_chain()
        we = glucose_cell.working_electrodes[0]
        instrument_only = chain.noise_rms(we=None)
        with_sensor = chain.noise_rms(we=we)
        assert instrument_only < 0.01 * with_sensor

    def test_no_drift(self):
        chain = bench_chain()
        assert chain.baseline_drift_rate == 0.0
