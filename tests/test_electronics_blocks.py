"""Potentiostat, TIA, ADC, mux, current-to-frequency converter."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.electronics.adc import ADC, bits_for_resolution
from repro.electronics.freq_readout import CurrentToFrequencyConverter
from repro.electronics.mux import Multiplexer, MuxSchedule, MuxSlot
from repro.electronics.potentiostat import Potentiostat
from repro.electronics.tia import (
    CYP_READOUT,
    OXIDASE_READOUT,
    TransimpedanceAmplifier,
)
from repro.errors import ElectronicsError

volts = st.floats(min_value=-1.0, max_value=1.0)


class TestPotentiostat:
    def test_high_gain_small_error(self):
        p = Potentiostat(open_loop_gain=1e5, input_offset=0.0)
        assert abs(p.regulation_error(0.65)) < 1e-4

    def test_offset_appears_at_output(self):
        p = Potentiostat(open_loop_gain=1e9, input_offset=1e-3)
        assert p.applied_potential(0.0) == pytest.approx(1e-3, rel=1e-3)

    def test_compliance_clips(self):
        p = Potentiostat(compliance=1.5)
        assert p.applied_potential(5.0) == pytest.approx(1.5)

    def test_counter_drive_includes_ir_drop(self):
        p = Potentiostat(solution_resistance=1e3)
        drive = p.counter_drive(0.65, 1e-4)
        assert drive == pytest.approx(0.65 + 0.1)

    def test_max_cell_current(self):
        p = Potentiostat(compliance=1.5, solution_resistance=1e3)
        assert p.max_cell_current(0.5) == pytest.approx(1e-3)
        assert p.max_cell_current(2.0) == 0.0

    def test_settling(self):
        p = Potentiostat(bandwidth=1e4)
        t = p.settle_time(0.01)
        assert p.settled_after(t * 1.01)
        assert not p.settled_after(t * 0.5)

    def test_step_response_monotone(self):
        p = Potentiostat()
        t = np.linspace(0.0, 1e-3, 50)
        y = p.step_response(t)
        assert np.all(np.diff(y) >= 0.0)
        assert y[-1] <= 1.0


class TestTIA:
    def test_inverting_transfer(self):
        tia = TransimpedanceAmplifier(feedback_resistance=1e5)
        assert tia.output_voltage(1e-6) == pytest.approx(-0.1)

    def test_rails_clip_and_flag(self):
        tia = TransimpedanceAmplifier(feedback_resistance=1e5, rail=1.2)
        assert tia.output_voltage(1.0) == -1.2
        assert tia.saturates(1.0)
        assert not tia.saturates(1e-6)

    @given(st.floats(min_value=-9e-6, max_value=9e-6))
    def test_round_trip_inside_range(self, i):
        tia = TransimpedanceAmplifier.for_range(10e-6)
        v = tia.output_voltage(i)
        assert tia.input_current(v) == pytest.approx(i, abs=1e-12)

    def test_paper_readout_classes(self):
        # Sec. II-C: +/-10 uA for oxidases, +/-100 uA for CYPs.
        assert OXIDASE_READOUT.full_scale_current == pytest.approx(10e-6)
        assert CYP_READOUT.full_scale_current == pytest.approx(100e-6)

    def test_thermal_noise_includes_johnson(self):
        tia = TransimpedanceAmplifier(feedback_resistance=1e5,
                                      amplifier_noise_density=1e-15)
        johnson = math.sqrt(4 * 1.380649e-23 * 298.15 / 1e5)
        assert tia.thermal_noise_density() == pytest.approx(johnson, rel=1e-3)

    def test_offset_current_added(self):
        tia = TransimpedanceAmplifier(feedback_resistance=1e5,
                                      input_offset_current=1e-8)
        assert tia.output_voltage(0.0) == pytest.approx(-1e-3)


class TestADC:
    def test_paper_resolution_needs_11_bits(self):
        # 20 uA span at 10 nA -> 2000 codes -> 11 bits (Sec. II-C).
        assert bits_for_resolution(20e-6, 10e-9) == 11
        assert bits_for_resolution(200e-6, 100e-9) == 11

    def test_quantize_bounds(self):
        adc = ADC(n_bits=8, v_min=-1.0, v_max=1.0)
        assert adc.quantize(-2.0) == 0
        assert adc.quantize(2.0) == adc.n_codes - 1

    @given(volts)
    def test_reconstruction_within_lsb(self, v):
        adc = ADC(n_bits=12, v_min=-1.2, v_max=1.2)
        if abs(v) <= 1.2:
            back = adc.to_voltage(adc.quantize(v))
            assert abs(back - v) <= adc.lsb * 0.5 + 1e-12

    @given(volts, volts)
    def test_monotone(self, v1, v2):
        adc = ADC(n_bits=10, v_min=-1.2, v_max=1.2)
        if v1 <= v2:
            assert adc.quantize(v1) <= adc.quantize(v2)

    def test_saturates_flag(self):
        adc = ADC(n_bits=8, v_min=-1.0, v_max=1.0)
        assert adc.saturates(1.5)
        assert not adc.saturates(0.5)

    def test_for_readout_meets_resolution(self):
        adc = ADC.for_readout(10e-6, 10e-9)
        tia = TransimpedanceAmplifier.for_range(10e-6, rail=1.2)
        assert adc.current_resolution(
            tia.feedback_resistance) <= 10e-9 * 1.01

    def test_quantization_noise(self):
        adc = ADC(n_bits=8, v_min=-1.0, v_max=1.0)
        assert adc.quantization_noise_rms() == pytest.approx(
            adc.lsb / math.sqrt(12.0))


class TestMux:
    def test_round_robin_schedule(self):
        mux = Multiplexer(n_channels=5, settling_time=0.05)
        schedule = mux.round_robin(["WE1", "WE2", "WE3"], dwell=1.0)
        assert schedule.period == pytest.approx(3.0)
        assert schedule.active_channel(0.5) == "WE1"
        assert schedule.active_channel(1.5) == "WE2"
        # Cyclic: wraps after one period.
        assert schedule.active_channel(3.5) == "WE1"

    def test_dwell_must_allow_settling(self):
        mux = Multiplexer(settling_time=0.1)
        with pytest.raises(ElectronicsError, match="settling"):
            mux.round_robin(["a"], dwell=0.2)

    def test_too_many_channels(self):
        mux = Multiplexer(n_channels=2)
        with pytest.raises(ElectronicsError, match="exceed"):
            mux.round_robin(["a", "b", "c"], dwell=1.0)

    def test_settling_factor_rises_to_one(self):
        mux = Multiplexer(settling_time=0.05)
        assert mux.settling_factor(0.0) == pytest.approx(0.0)
        assert mux.settling_factor(0.5) == pytest.approx(1.0, abs=1e-4)

    def test_injection_spike_decays(self):
        mux = Multiplexer(settling_time=0.05, charge_injection=1e-12)
        assert mux.injection_current(0.0) > mux.injection_current(0.2)

    def test_time_since_switch(self):
        mux = Multiplexer(n_channels=3)
        schedule = mux.round_robin(["a", "b"], dwell=1.0)
        assert schedule.time_since_switch(0.25) == pytest.approx(0.25)
        assert schedule.time_since_switch(1.25) == pytest.approx(0.25)

    def test_samples_per_channel(self):
        mux = Multiplexer(settling_time=0.05)
        n = mux.samples_per_channel(dwell=1.0, sample_rate=100.0)
        assert 0 < n < 100

    def test_overlapping_slots_rejected(self):
        with pytest.raises(ElectronicsError, match="overlap"):
            MuxSchedule((MuxSlot("a", 0.0, 1.0), MuxSlot("b", 0.5, 1.5)))


class TestFreqReadout:
    def test_frequency_linear_in_current(self):
        conv = CurrentToFrequencyConverter(charge_per_pulse=1e-12,
                                           offset_frequency=0.0)
        assert conv.frequency(1e-9) == pytest.approx(1e3)
        assert conv.frequency(2e-9) == pytest.approx(2e3)

    def test_estimate_round_trip(self):
        conv = CurrentToFrequencyConverter()
        i = 5e-9
        count = conv.count(i, gate_time=10.0)
        back = conv.estimate_current(count, gate_time=10.0)
        assert back == pytest.approx(i, rel=0.05)

    def test_resolution_improves_with_gate_time(self):
        # The defining trade-off of frequency-domain readout.
        conv = CurrentToFrequencyConverter()
        assert conv.current_resolution(10.0) < conv.current_resolution(1.0)

    def test_gate_time_for_resolution_inverts(self):
        conv = CurrentToFrequencyConverter()
        gate = conv.gate_time_for_resolution(1e-10)
        assert conv.current_resolution(gate) == pytest.approx(1e-10)

    def test_saturation_at_ceiling(self):
        conv = CurrentToFrequencyConverter(charge_per_pulse=1e-12,
                                           max_frequency=1e4)
        assert conv.frequency(1.0) == 1e4

    def test_stochastic_count_unbiased(self, rng):
        conv = CurrentToFrequencyConverter(offset_frequency=0.0)
        expected = conv.frequency(3.3e-10) * 1.0
        counts = [conv.count(3.3e-10, 1.0, rng) for _ in range(300)]
        assert np.mean(counts) == pytest.approx(expected, rel=0.05)
