"""Pareto utilities and target/panel specifications."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import dominates, pareto_front, pareto_indices
from repro.core.targets import PanelSpec, TargetSpec, paper_panel_spec
from repro.errors import DesignError

vectors = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=100.0),
              st.floats(min_value=0.0, max_value=100.0),
              st.floats(min_value=0.0, max_value=100.0)),
    min_size=1, max_size=40)


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_does_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_incomparable(self):
        assert not dominates((1.0, 3.0), (3.0, 1.0))
        assert not dominates((3.0, 1.0), (1.0, 3.0))

    def test_length_mismatch(self):
        with pytest.raises(DesignError):
            dominates((1.0,), (1.0, 2.0))


class TestParetoFront:
    @given(vectors)
    @settings(max_examples=40, deadline=None)
    def test_front_is_nonempty_subset(self, vs):
        idx = pareto_indices(vs)
        assert len(idx) >= 1
        assert all(0 <= i < len(vs) for i in idx)

    @given(vectors)
    @settings(max_examples=40, deadline=None)
    def test_no_front_member_dominated(self, vs):
        idx = set(pareto_indices(vs))
        for i in idx:
            for j, w in enumerate(vs):
                if j != i:
                    assert not dominates(w, vs[i])

    @given(vectors)
    @settings(max_examples=40, deadline=None)
    def test_every_dropped_point_is_dominated(self, vs):
        idx = set(pareto_indices(vs))
        for i, v in enumerate(vs):
            if i not in idx:
                assert any(dominates(w, v) for j, w in enumerate(vs)
                           if j != i)

    @given(vectors)
    @settings(max_examples=20, deadline=None)
    def test_idempotent(self, vs):
        front = pareto_front(vs, key=lambda v: v)
        again = pareto_front(front, key=lambda v: v)
        assert sorted(front) == sorted(again)

    def test_duplicates_all_kept(self):
        vs = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_indices(vs) == (0, 1)

    def test_key_projection(self):
        items = [{"name": "a", "cost": (1.0, 2.0)},
                 {"name": "b", "cost": (2.0, 1.0)},
                 {"name": "c", "cost": (3.0, 3.0)}]
        front = pareto_front(items, key=lambda x: x["cost"])
        names = {x["name"] for x in front}
        assert names == {"a", "b"}


class TestTargetSpec:
    def test_validation(self):
        spec = TargetSpec("glucose", 0.5, 4.0)
        assert spec.mid_concentration == pytest.approx((0.5 * 4.0) ** 0.5)
        with pytest.raises(DesignError):
            TargetSpec("glucose", 4.0, 0.5)
        with pytest.raises(Exception):
            TargetSpec("unobtainium", 0.5, 4.0)


class TestPanelSpec:
    def test_paper_panel_has_six_targets(self):
        panel = paper_panel_spec()
        assert len(panel.targets) == 6
        assert set(panel.species_names()) == {
            "glucose", "lactate", "glutamate", "benzphetamine",
            "aminopyrine", "cholesterol"}

    def test_duplicate_targets_rejected(self):
        t = TargetSpec("glucose", 0.5, 4.0)
        with pytest.raises(DesignError, match="duplicate"):
            PanelSpec(name="bad", targets=(t, t))

    def test_target_lookup(self):
        panel = paper_panel_spec()
        assert panel.target("glucose").c_max == pytest.approx(4.0)
        with pytest.raises(DesignError):
            panel.target("caffeine" if False else "clozapine")
