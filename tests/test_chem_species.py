"""Species registry: built-ins, validation, registration."""

from __future__ import annotations

import pytest

from repro.chem import constants as C
from repro.chem.species import (
    ENDOGENOUS_METABOLITES,
    EXOGENOUS_DRUGS,
    Species,
    get_species,
    has_species,
    register_species,
    species_names,
)
from repro.errors import ChemistryError, UnknownSpeciesError


class TestBuiltins:
    def test_paper_metabolites_present(self):
        for name in ENDOGENOUS_METABOLITES:
            assert has_species(name)

    def test_paper_drugs_present(self):
        for name in EXOGENOUS_DRUGS:
            assert has_species(name)

    def test_reaction_intermediates_present(self):
        assert get_species("h2o2").n_electrons == C.ELECTRONS_PER_H2O2
        assert has_species("o2")

    def test_direct_oxidizers_flagged(self):
        # The paper's CDS caveat names exactly these two.
        assert get_species("dopamine").is_direct_oxidizer
        assert get_species("etoposide").is_direct_oxidizer

    def test_enzyme_targets_are_not_direct_oxidizers(self):
        for name in ENDOGENOUS_METABOLITES:
            assert not get_species(name).is_direct_oxidizer

    def test_diffusivities_physical(self):
        # Aqueous small-molecule diffusivities sit in 1e-10 .. 3e-9 m^2/s.
        for name in species_names():
            d = get_species(name).diffusivity
            assert 1.0e-10 <= d <= 3.0e-9, name

    def test_cholesterol_slowest_metabolite(self):
        # Micelle-bound cholesterol diffuses slowest of the four.
        cholesterol = get_species("cholesterol").diffusivity
        for other in ("glucose", "lactate", "glutamate"):
            assert cholesterol < get_species(other).diffusivity

    def test_chemotherapy_compounds_from_intro(self):
        for name in ("ftorafur", "cyclophosphamide", "ifosfamide"):
            assert has_species(name)


class TestLookup:
    def test_unknown_species_raises_with_known_list(self):
        with pytest.raises(UnknownSpeciesError) as excinfo:
            get_species("unobtainium")
        assert "glucose" in str(excinfo.value)

    def test_names_sorted(self):
        names = species_names()
        assert list(names) == sorted(names)


class TestRegistration:
    def test_register_and_get(self):
        sp = Species(name="test_molecule_xyz", display_name="Test",
                     diffusivity=5.0e-10)
        register_species(sp)
        assert get_species("test_molecule_xyz") is sp

    def test_duplicate_registration_rejected(self):
        sp = Species(name="test_molecule_dup", display_name="Test",
                     diffusivity=5.0e-10)
        register_species(sp)
        with pytest.raises(ChemistryError, match="already registered"):
            register_species(sp)

    def test_overwrite_allowed_when_asked(self):
        sp = Species(name="test_molecule_ow", display_name="Test",
                     diffusivity=5.0e-10)
        register_species(sp)
        sp2 = sp.with_diffusivity(6.0e-10)
        register_species(sp2, overwrite=True)
        assert get_species("test_molecule_ow").diffusivity == 6.0e-10


class TestValidation:
    def test_negative_diffusivity_rejected(self):
        with pytest.raises(Exception):
            Species(name="bad", display_name="Bad", diffusivity=-1.0)

    def test_zero_electrons_rejected(self):
        with pytest.raises(ChemistryError):
            Species(name="bad2", display_name="Bad", diffusivity=1e-9,
                    n_electrons=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ChemistryError):
            Species(name="", display_name="Bad", diffusivity=1e-9)

    def test_with_diffusivity_returns_copy(self):
        glucose = get_species("glucose")
        slowed = glucose.with_diffusivity(1.0e-10)
        assert slowed.diffusivity == 1.0e-10
        assert glucose.diffusivity != 1.0e-10
        assert slowed.name == glucose.name
