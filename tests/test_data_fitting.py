"""The Table III inversion machinery: films, channels, noise placement."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chem import constants as C
from repro.chem.kinetics import steady_state_turnover_flux
from repro.data.fitting import (
    blank_noise_density_for_lod,
    cyp_channel_params_from_paper,
    oxidase_film_from_paper,
)
from repro.errors import ChemistryError
from repro.units import sensitivity_to_si

#: A representative glucose-like transport coefficient, m/s.
MASS_TRANSFER = 5.0e-6

sensitivities = st.floats(min_value=1.0, max_value=60.0)
uppers = st.floats(min_value=0.5, max_value=10.0)


class TestOxidaseInversion:
    @given(sensitivities, uppers)
    @settings(max_examples=25, deadline=None)
    def test_endpoint_slope_matches_request(self, s_paper, upper):
        # The ceiling check: skip infeasible demands (tested separately).
        s_si = sensitivity_to_si(s_paper)
        ceiling = 2 * C.FARADAY * 0.95 * MASS_TRANSFER
        assume(s_si < 0.9 * ceiling)
        lower = upper / 8.0
        film = oxidase_film_from_paper(s_paper, upper, MASS_TRANSFER,
                                       linear_lower=lower)
        f_low = steady_state_turnover_flux(lower, film, MASS_TRANSFER)
        f_up = steady_state_turnover_flux(upper, film, MASS_TRANSFER)
        slope = (f_up - f_low) / (upper - lower)
        achieved = slope * 2 * C.FARADAY * 0.95
        assert achieved == pytest.approx(s_si, rel=0.02)

    @given(sensitivities, uppers)
    @settings(max_examples=25, deadline=None)
    def test_nonlinearity_within_budget_on_the_range(self, s_paper, upper):
        s_si = sensitivity_to_si(s_paper)
        ceiling = 2 * C.FARADAY * 0.95 * MASS_TRANSFER
        assume(s_si < 0.7 * ceiling)
        lower = upper / 8.0
        film = oxidase_film_from_paper(s_paper, upper, MASS_TRANSFER,
                                       linear_lower=lower)
        f_low = steady_state_turnover_flux(lower, film, MASS_TRANSFER)
        f_up = steady_state_turnover_flux(upper, film, MASS_TRANSFER)
        slope = (f_up - f_low) / (upper - lower)
        worst = 0.0
        for frac in (0.25, 0.5, 0.75):
            c = lower + frac * (upper - lower)
            f = steady_state_turnover_flux(c, film, MASS_TRANSFER)
            worst = max(worst, abs(f - (f_low + slope * (c - lower))))
        # Within the 5 % budget plus a little slack for the bisection.
        assert worst <= 0.06 * abs(f_up - f_low)

    def test_transport_ceiling_rejected(self):
        # n*F*eta*m ~ 92 uA/(mM cm^2) for this m; asking for more fails.
        with pytest.raises(ChemistryError, match="ceiling"):
            oxidase_film_from_paper(150.0, 4.0, MASS_TRANSFER)

    def test_bad_range_rejected(self):
        with pytest.raises(ChemistryError):
            oxidase_film_from_paper(20.0, 4.0, MASS_TRANSFER,
                                    linear_lower=5.0)


class TestCypInversion:
    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.05, max_value=8.0))
    @settings(max_examples=30)
    def test_efficiency_scales_linearly_with_sensitivity(self, s_paper,
                                                         upper):
        d = 5.0e-10
        try:
            eff1, km1 = cyp_channel_params_from_paper(s_paper, upper, d)
        except ChemistryError:
            assume(False)
        try:
            eff2, km2 = cyp_channel_params_from_paper(s_paper / 2, upper, d)
        except ChemistryError:
            assume(False)
        assert eff1 / eff2 == pytest.approx(2.0, rel=1e-9)
        assert km1 == km2

    def test_km_tracks_linear_range(self):
        d = 5.0e-10
        __, km_small = cyp_channel_params_from_paper(1.0, 1.0, d)
        __, km_large = cyp_channel_params_from_paper(1.0, 8.0, d)
        assert km_large / km_small == pytest.approx(8.0, rel=1e-9)

    def test_impossible_sensitivity_rejected(self):
        with pytest.raises(ChemistryError, match="ceiling|2"):
            cyp_channel_params_from_paper(10000.0, 1.0, 5.0e-10)

    def test_height_factor_raises_efficiency(self):
        d = 5.0e-10
        eff_ideal, _ = cyp_channel_params_from_paper(1.0, 1.0, d,
                                                     height_factor=1.0)
        eff_attenuated, _ = cyp_channel_params_from_paper(
            1.0, 1.0, d, height_factor=0.5)
        assert eff_attenuated == pytest.approx(2.0 * eff_ideal, rel=1e-9)


class TestNoisePlacement:
    @given(st.floats(min_value=0.05, max_value=2.0),
           st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=30)
    def test_round_trip_lod(self, lod, s_paper):
        # density -> sigma -> LOD must reproduce the requested LOD.
        area = 7.0e-6
        density = blank_noise_density_for_lod(lod, s_paper, area,
                                              bench_nyquist=5.0)
        radius = math.sqrt(area / math.pi)
        sigma = density * (radius / 1.0e-3) * math.sqrt(5.0)
        recovered = 3.0 * sigma / (sensitivity_to_si(s_paper) * area)
        assert recovered == pytest.approx(lod, rel=1e-9)

    def test_larger_lod_means_noisier_electrode(self):
        quiet = blank_noise_density_for_lod(0.1, 27.7, 7e-6)
        noisy = blank_noise_density_for_lod(1.0, 27.7, 7e-6)
        assert noisy == pytest.approx(10.0 * quiet, rel=1e-9)
