"""Tests for :mod:`repro.devtools` — the static invariant linter.

Each rule gets fixture-driven positive (fires), negative (quiet) and
suppressed coverage; on top of that: suppression-annotation hygiene
(REP000), baseline add/expire semantics, reporter output stability,
CLI exit codes (0 clean / 1 findings / 2 usage), the REP004
schema-drift regression demanded by the issue (field change fires
without a ``SCHEMA_VERSION`` bump, stays quiet with one), and the
self-hosting gate: the shipped rule set runs clean over ``src/``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import (
    Baseline,
    DeterminismRule,
    ErrorTaxonomyRule,
    FloatEqualityRule,
    LintEngine,
    LockDisciplineRule,
    SchemaSnapshotRule,
    SpecRoundTripRule,
    default_engine,
    default_rules,
    render_json,
    render_text,
)
from repro.devtools.engine import collect_sources
from repro.devtools.schema import write_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(tmp_path: Path, files: dict[str, str], rules,
         baseline: Baseline | None = None):
    """Write a fixture tree and run ``rules`` over it."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    engine = LintEngine(rules, root=tmp_path, baseline=baseline)
    return engine.run([tmp_path])


def rules_of(result) -> list[str]:
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------------
# REP001 — determinism


class TestDeterminism:
    def test_legacy_np_random_fires(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            import numpy as np

            def noisy(n):
                return np.random.rand(n)
        """}, [DeterminismRule()])
        assert rules_of(result) == ["REP001"]
        assert "legacy global random state" in result.findings[0].message

    def test_stdlib_random_fires(self, tmp_path):
        result = lint(tmp_path, {"chem/mod.py": """
            import random

            def jitter():
                return random.random()
        """}, [DeterminismRule()])
        assert rules_of(result) == ["REP001"]

    def test_unseeded_default_rng_fires(self, tmp_path):
        result = lint(tmp_path, {"api/mod.py": """
            import numpy as np

            def fresh():
                return np.random.default_rng()
        """}, [DeterminismRule()])
        assert rules_of(result) == ["REP001"]
        assert "without a seed" in result.findings[0].message

    def test_time_derived_seed_fires(self, tmp_path):
        result = lint(tmp_path, {"service/mod.py": """
            import time
            import numpy as np

            def sneaky():
                return np.random.default_rng(int(time.time()))

            def sneakier():
                return np.random.default_rng(seed=time.time_ns())
        """}, [DeterminismRule()])
        # int(time.time()) hides the call one level down — the direct
        # keyword form is caught; the wrapped one documents the limit.
        assert "REP001" in rules_of(result)

    def test_seeded_rng_is_quiet(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=3)
        """}, [DeterminismRule()])
        assert result.clean

    def test_outside_restricted_packages_is_quiet(self, tmp_path):
        result = lint(tmp_path, {"scripts/mod.py": """
            import numpy as np

            def whatever():
                return np.random.rand(3)
        """}, [DeterminismRule()])
        assert result.clean

    def test_suppressed(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            import numpy as np

            def noisy(n):
                # repro: lint-ignore[REP001] test fixture exercising
                # the legacy path on purpose
                return np.random.rand(n)
        """}, [DeterminismRule()])
        assert result.clean and len(result.suppressed) == 1


# ---------------------------------------------------------------------------
# REP002 — error taxonomy


class TestErrorTaxonomy:
    def test_bare_except_fires_anywhere(self, tmp_path):
        result = lint(tmp_path, {"scripts/mod.py": """
            def swallow():
                try:
                    return 1
                except:
                    return None
        """}, [ErrorTaxonomyRule()])
        assert rules_of(result) == ["REP002"]

    def test_except_exception_fires(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            def swallow():
                try:
                    return 1
                except (KeyError, Exception):
                    return None
        """}, [ErrorTaxonomyRule()])
        assert rules_of(result) == ["REP002"]

    def test_generic_raise_at_boundary_fires(self, tmp_path):
        result = lint(tmp_path, {"api/mod.py": """
            def check(x):
                if x < 0:
                    raise ValueError("negative")
        """}, [ErrorTaxonomyRule()])
        assert rules_of(result) == ["REP002"]

    def test_generic_raise_outside_boundary_is_quiet(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            def check(x):
                if x < 0:
                    raise ValueError("negative")
        """}, [ErrorTaxonomyRule()])
        assert result.clean

    def test_taxonomy_raise_and_narrow_except_are_quiet(self, tmp_path):
        result = lint(tmp_path, {"api/mod.py": """
            from repro.errors import SpecError

            def check(x):
                try:
                    return int(x)
                except KeyError:
                    raise SpecError("bad")
        """}, [ErrorTaxonomyRule()])
        assert result.clean

    def test_suppressed_with_reason(self, tmp_path):
        result = lint(tmp_path, {"api/mod.py": """
            def boundary():
                try:
                    return 1
                except Exception:  # repro: lint-ignore[REP002] boundary
                    return None
        """}, [ErrorTaxonomyRule()])
        assert result.clean and len(result.suppressed) == 1


# ---------------------------------------------------------------------------
# REP003 — lock discipline


LOCKED_CLASS = """
    import threading

    class RunStore:
        def __init__(self):
            self._mutex = threading.RLock()
            self._index = {}

        def unlocked_peek(self):
            return len(self._index)

        def locked_peek(self):
            with self._mutex:
                return len(self._index)

        def _peek_locked(self):
            return len(self._index)
"""


class TestLockDiscipline:
    def test_unlocked_access_fires(self, tmp_path):
        result = lint(tmp_path, {"api/store.py": LOCKED_CLASS},
                      [LockDisciplineRule()])
        assert rules_of(result) == ["REP003"]
        assert "unlocked_peek" in result.findings[0].message

    def test_with_lock_init_and_locked_helper_are_quiet(self, tmp_path):
        quiet = LOCKED_CLASS.replace(
            "def unlocked_peek(self):\n            "
            "return len(self._index)", "")
        result = lint(tmp_path, {"api/store.py": quiet},
                      [LockDisciplineRule()])
        assert result.clean

    def test_unlisted_class_is_quiet(self, tmp_path):
        result = lint(tmp_path, {
            "api/store.py": LOCKED_CLASS.replace("RunStore", "Sidecar")},
            [LockDisciplineRule()])
        assert result.clean

    def test_injectable_guards_table(self, tmp_path):
        rule = LockDisciplineRule(
            guards={"Sidecar": (("_mutex",), ("_index",))})
        result = lint(tmp_path, {
            "api/store.py": LOCKED_CLASS.replace("RunStore", "Sidecar")},
            [rule])
        assert rules_of(result) == ["REP003"]

    def test_suppressed(self, tmp_path):
        text = LOCKED_CLASS.replace(
            "def unlocked_peek(self):",
            "def unlocked_peek(self):\n"
            "            # repro: lint-ignore[REP003] stats-only read\n"
            "            # of a len() is tear-free on CPython")
        result = lint(tmp_path, {"api/store.py": text},
                      [LockDisciplineRule()])
        assert result.clean and len(result.suppressed) == 1


# ---------------------------------------------------------------------------
# REP005 — float equality


class TestFloatEquality:
    def test_nonzero_float_equality_fires(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            def check(x, y):
                return x == 1.5 or y != -2.25
        """}, [FloatEqualityRule()])
        assert rules_of(result) == ["REP005", "REP005"]
        assert all(f.severity == "warning" for f in result.findings)

    def test_zero_guard_and_int_equality_are_quiet(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            def check(denom, n):
                if denom == 0.0:
                    return None
                return n == 3
        """}, [FloatEqualityRule()])
        assert result.clean

    def test_suppressed(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            def check(x):
                return x == 1.5  # repro: lint-ignore[REP005] exact pin
        """}, [FloatEqualityRule()])
        assert result.clean and len(result.suppressed) == 1


# ---------------------------------------------------------------------------
# REP006 — provenance completeness (spec round-trip)


SPEC_OK = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class ThingSpec:
        alpha: int
        beta: float = 1.0

        def to_dict(self):
            return {"alpha": self.alpha, "beta": self.beta}

        @classmethod
        def from_dict(cls, payload):
            return cls(alpha=payload["alpha"], beta=payload["beta"])
"""


class TestSpecRoundTrip:
    def test_complete_spec_is_quiet(self, tmp_path):
        result = lint(tmp_path, {"api/specs.py": SPEC_OK},
                      [SpecRoundTripRule()])
        assert result.clean

    def test_field_missing_from_to_dict_fires(self, tmp_path):
        broken = SPEC_OK.replace('"beta": self.beta', '"b": self.beta')
        result = lint(tmp_path, {"api/specs.py": broken},
                      [SpecRoundTripRule()])
        assert rules_of(result) == ["REP006"]
        assert "ThingSpec.beta" in result.findings[0].message

    def test_field_missing_from_from_dict_fires(self, tmp_path):
        broken = SPEC_OK.replace('beta=payload["beta"]', "beta=1.0")
        result = lint(tmp_path, {"api/specs.py": broken},
                      [SpecRoundTripRule()])
        assert rules_of(result) == ["REP006"]
        assert "from_dict" in result.findings[0].message

    def test_plain_dataclass_is_not_a_spec(self, tmp_path):
        plain = "\n".join(
            line for line in textwrap.dedent(SPEC_OK).splitlines()
            if "dict" not in line and "return {" not in line
            and "return cls(" not in line and "payload" not in line
            and "@classmethod" not in line)
        result = lint(tmp_path, {"api/other.py": plain},
                      [SpecRoundTripRule()])
        assert result.clean


# ---------------------------------------------------------------------------
# REP004 — schema snapshot drift (the issue's regression scenario)


SPEC_V1 = """
    from dataclasses import dataclass

    SCHEMA_VERSION = 4

    @dataclass(frozen=True)
    class ThingSpec:
        alpha: int

        def to_dict(self):
            return {"alpha": self.alpha, "schema": SCHEMA_VERSION}

        @classmethod
        def from_dict(cls, payload):
            return cls(alpha=payload["alpha"])
"""


def write_tree(tmp_path: Path, files: dict[str, str]) -> None:
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")


class TestSchemaSnapshot:
    def snapshot_for(self, tmp_path: Path) -> Path:
        write_tree(tmp_path, {"api/specs.py": SPEC_V1})
        snapshot = tmp_path / "schema_snapshot.json"
        write_snapshot(snapshot,
                       collect_sources([tmp_path / "api"], tmp_path))
        return snapshot

    def run(self, tmp_path, snapshot):
        engine = LintEngine([SchemaSnapshotRule(snapshot)],
                            root=tmp_path)
        return engine.run([tmp_path / "api"])

    def test_matching_snapshot_is_quiet(self, tmp_path):
        snapshot = self.snapshot_for(tmp_path)
        assert self.run(tmp_path, snapshot).clean

    def test_added_field_without_bump_fires(self, tmp_path):
        snapshot = self.snapshot_for(tmp_path)
        write_tree(tmp_path, {"api/specs.py": SPEC_V1.replace(
            "alpha: int", "alpha: int\n        gamma: float = 0.0")})
        result = self.run(tmp_path, snapshot)
        assert rules_of(result) == ["REP004"]
        assert "field(s) added: gamma" in result.findings[0].message

    def test_removed_field_without_bump_fires(self, tmp_path):
        snapshot = self.snapshot_for(tmp_path)
        write_tree(tmp_path, {"api/specs.py": SPEC_V1.replace(
            "        alpha: int\n", "")})
        result = self.run(tmp_path, snapshot)
        assert rules_of(result) == ["REP004"]
        assert "field(s) removed: alpha" in result.findings[0].message

    def test_drift_with_version_bump_is_quiet(self, tmp_path):
        snapshot = self.snapshot_for(tmp_path)
        write_tree(tmp_path, {"api/specs.py": SPEC_V1.replace(
            "SCHEMA_VERSION = 4", "SCHEMA_VERSION = 5").replace(
            "alpha: int", "alpha: int\n        gamma: float = 0.0")})
        assert self.run(tmp_path, snapshot).clean

    def test_missing_snapshot_fires(self, tmp_path):
        write_tree(tmp_path, {"api/specs.py": SPEC_V1})
        result = self.run(tmp_path, tmp_path / "nope.json")
        assert rules_of(result) == ["REP004"]
        assert "--write-schema" in result.findings[0].message

    def test_spec_class_added_without_bump_fires(self, tmp_path):
        snapshot = self.snapshot_for(tmp_path)
        write_tree(tmp_path, {"api/specs.py": textwrap.dedent(SPEC_V1)
                   + textwrap.dedent(SPEC_OK).replace(
                       "ThingSpec", "OtherSpec")})
        result = self.run(tmp_path, snapshot)
        assert rules_of(result) == ["REP004"]
        assert "spec class added" in result.findings[0].message


# ---------------------------------------------------------------------------
# REP000 — suppression hygiene


class TestSuppressionHygiene:
    def test_unknown_rule_is_a_finding(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            x = 1  # repro: lint-ignore[REP042] typo'd rule id
        """}, [DeterminismRule()])
        assert rules_of(result) == ["REP000"]
        assert "unknown rule" in result.findings[0].message

    def test_missing_reason_is_a_finding(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            import numpy as np
            y = np.random.rand()  # repro: lint-ignore[REP001]
        """}, [DeterminismRule()])
        # The reasonless annotation is a finding AND suppresses nothing:
        # the REP001 it tried to hide still fires.
        assert sorted(rules_of(result)) == ["REP000", "REP001"]

    def test_unparseable_file_is_a_finding(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": "def broken(:\n"},
                      [DeterminismRule()])
        assert rules_of(result) == ["REP000"]
        assert "does not parse" in result.findings[0].message

    def test_comment_block_covers_first_code_line(self, tmp_path):
        result = lint(tmp_path, {"engine/mod.py": """
            import numpy as np

            # repro: lint-ignore[REP001] a reason long enough that it
            # wraps over two whole comment lines before the code
            y = np.random.rand()
        """}, [DeterminismRule()])
        assert result.clean and len(result.suppressed) == 1


# ---------------------------------------------------------------------------
# Baseline add / expire


class TestBaseline:
    FILES = {"api/mod.py": """
        def check(x):
            if x < 0:
                raise ValueError("negative")
    """}

    def test_baselined_finding_does_not_fail_gate(self, tmp_path):
        first = lint(tmp_path, self.FILES, [ErrorTaxonomyRule()])
        assert not first.clean
        path = tmp_path / "baseline.json"
        Baseline.write(path, first.findings)
        second = lint(tmp_path, {}, [ErrorTaxonomyRule()],
                      baseline=Baseline.load(path))
        assert second.clean and len(second.baselined) == 1

    def test_fixed_finding_goes_stale(self, tmp_path):
        first = lint(tmp_path, self.FILES, [ErrorTaxonomyRule()])
        path = tmp_path / "baseline.json"
        Baseline.write(path, first.findings)
        (tmp_path / "api/mod.py").write_text(
            "def check(x):\n    return x\n", encoding="utf-8")
        result = lint(tmp_path, {}, [ErrorTaxonomyRule()],
                      baseline=Baseline.load(path))
        assert result.clean
        assert len(result.stale_baseline) == 1
        assert result.stale_baseline[0]["rule"] == "REP002"

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        first = lint(tmp_path, self.FILES, [ErrorTaxonomyRule()])
        path = tmp_path / "baseline.json"
        Baseline.write(path, first.findings)
        result = lint(tmp_path, {"api/new.py": """
            def swallow():
                try:
                    return 1
                except:
                    return None
        """}, [ErrorTaxonomyRule()], baseline=Baseline.load(path))
        assert rules_of(result) == ["REP002"]
        assert result.findings[0].path == "api/new.py"

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == []


# ---------------------------------------------------------------------------
# Reporters


class TestReporters:
    def result(self, tmp_path):
        return lint(tmp_path, {"api/mod.py": """
            def check(x):
                if x < 0:
                    raise ValueError("negative")
        """}, [ErrorTaxonomyRule()])

    def test_text_report_is_stable_and_parseable(self, tmp_path):
        result = self.result(tmp_path)
        text = render_text(result)
        assert text == render_text(result)  # deterministic
        line = text.splitlines()[0]
        assert line.startswith("api/mod.py:4:")
        assert "REP002 error:" in line
        assert text.splitlines()[-1].startswith("1 finding in 1 file")

    def test_json_report_round_trips(self, tmp_path):
        result = self.result(tmp_path)
        payload = json.loads(render_json(result))
        assert payload["clean"] is False
        assert payload["n_files"] == 1
        assert payload["findings"][0]["rule"] == "REP002"
        assert render_json(result) == render_json(result)

    def test_clean_summary(self, tmp_path):
        result = lint(tmp_path, {"api/mod.py": "x = 1\n"},
                      [ErrorTaxonomyRule()])
        assert render_text(result) == "0 findings in 1 file"
        assert json.loads(render_json(result))["clean"] is True


# ---------------------------------------------------------------------------
# CLI exit codes and self-hosting


class TestCli:
    def test_exit_0_on_clean_tree(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {"pkg/mod.py": "x = 1\n"})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "pkg"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_1_on_findings(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {"api/mod.py": (
            "def f(x):\n"
            "    raise ValueError(x)\n")})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "api"]) == 1
        assert "REP002" in capsys.readouterr().out

    def test_exit_2_on_missing_path(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "no-such-dir"]) == 2
        assert "usage error" in capsys.readouterr().err

    def test_exit_2_on_unknown_rule(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--rule", "REP999"])
        assert excinfo.value.code == 2

    def test_rule_filter(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {"api/mod.py": (
            "def f(x):\n"
            "    raise ValueError(x)\n")})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "api", "--rule", "REP005"]) == 0

    def test_json_report_and_custom_baseline(self, tmp_path,
                                             monkeypatch, capsys):
        write_tree(tmp_path, {"api/mod.py": (
            "def f(x):\n"
            "    raise ValueError(x)\n")})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "api", "--baseline", "bl.json",
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "api", "--baseline", "bl.json",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert len(payload["baselined"]) == 1

    def test_help_epilog_lists_rules(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.rule_id in out

    def test_self_hosting_src_is_lint_clean(self, monkeypatch, capsys):
        """The shipped tree passes its own gate (the CI invariant)."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src"]) == 0

    def test_default_engine_matches_cli(self):
        result = default_engine(root=REPO_ROOT).run([REPO_ROOT / "src"])
        assert result.clean
        assert not result.stale_baseline
