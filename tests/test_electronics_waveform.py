"""Voltage-generator waveforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.electronics.waveform import (
    MAX_ACCURATE_SCAN_RATE,
    ConstantWaveform,
    StepWaveform,
    TriangleWaveform,
)
from repro.errors import ElectronicsError


class TestConstant:
    def test_value_and_rate(self):
        w = ConstantWaveform(level=0.55, duration=60.0)
        assert w.value(30.0) == 0.55
        assert w.rate(30.0) == 0.0

    def test_vectorized(self):
        w = ConstantWaveform(level=0.55, duration=60.0)
        t = np.linspace(0.0, 60.0, 7)
        assert np.all(w.value(t) == 0.55)

    def test_never_exceeds_scan_limit(self):
        w = ConstantWaveform(level=0.55, duration=60.0)
        assert not w.exceeds_accurate_scan_rate()


class TestStep:
    def test_levels_at_times(self):
        w = StepWaveform(times=(0.0, 10.0, 20.0),
                         levels=(0.0, 0.3, 0.6), duration=30.0)
        assert w.value(5.0) == 0.0
        assert w.value(10.0) == 0.3
        assert w.value(25.0) == 0.6

    def test_times_must_start_at_zero(self):
        with pytest.raises(ElectronicsError):
            StepWaveform(times=(1.0,), levels=(0.0,), duration=5.0)

    def test_duration_must_cover_steps(self):
        with pytest.raises(ElectronicsError):
            StepWaveform(times=(0.0, 10.0), levels=(0.0, 0.3), duration=5.0)


class TestTriangle:
    def test_cathodic_sweep_shape(self):
        w = TriangleWaveform(e_start=0.0, e_vertex=-0.7, scan_rate=0.02)
        assert w.direction == -1.0
        assert w.half_period == pytest.approx(35.0)
        assert w.duration == pytest.approx(70.0)
        assert w.value(0.0) == pytest.approx(0.0)
        assert w.value(35.0) == pytest.approx(-0.7)
        assert w.value(70.0) == pytest.approx(0.0, abs=1e-9)

    def test_rate_sign_flips_at_vertex(self):
        w = TriangleWaveform(e_start=0.0, e_vertex=-0.7, scan_rate=0.02)
        assert w.rate(10.0) == pytest.approx(-0.02)
        assert w.rate(40.0) == pytest.approx(+0.02)

    def test_multi_cycle_periodicity(self):
        w = TriangleWaveform(e_start=0.1, e_vertex=-0.5, scan_rate=0.02,
                             n_cycles=3)
        period = 2.0 * w.half_period
        t = np.linspace(0.0, period, 50)
        assert np.allclose(w.value(t), w.value(t + period), atol=1e-9)

    @given(st.floats(min_value=-0.5, max_value=0.5),
           st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.001, max_value=0.1))
    @settings(max_examples=40, deadline=None)
    def test_stays_within_window(self, e_start, window, rate):
        w = TriangleWaveform(e_start=e_start, e_vertex=e_start - window,
                             scan_rate=rate)
        t = np.linspace(0.0, w.duration, 200)
        values = w.value(t)
        assert np.all(values <= e_start + 1e-9)
        assert np.all(values >= e_start - window - 1e-9)

    def test_scan_rate_limit_check(self):
        slow = TriangleWaveform(e_start=0.0, e_vertex=-0.5, scan_rate=0.02)
        fast = TriangleWaveform(e_start=0.0, e_vertex=-0.5, scan_rate=0.1)
        assert not slow.exceeds_accurate_scan_rate()
        assert fast.exceeds_accurate_scan_rate()
        assert MAX_ACCURATE_SCAN_RATE == pytest.approx(0.020)

    def test_degenerate_vertex_rejected(self):
        with pytest.raises(ElectronicsError):
            TriangleWaveform(e_start=0.1, e_vertex=0.1, scan_rate=0.02)
