"""Smoke tests: every example script runs and tells its story.

Examples are user-facing contracts; these tests execute them in-process
(fast, no subprocess) and assert on the landmarks of their output.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "sensitivity" in out
    assert "27.7" in out          # compares against the paper value
    assert "unknown sample" in out


def test_multi_metabolite_panel(capsys):
    out = run_example("multi_metabolite_panel", capsys)
    assert "NOT RECOVERED" not in out
    for target in ("glucose", "lactate", "glutamate", "benzphetamine",
                   "aminopyrine", "cholesterol"):
        assert target in out
    assert "resolved two drugs" in out


def test_drug_monitoring_cv(capsys):
    out = run_example("drug_monitoring_cv", capsys)
    assert "patient A" in out
    assert "CYP2B4" in out
    assert "dose guidance" in out


def test_design_space_exploration(capsys):
    out = run_example("design_space_exploration", capsys)
    assert "Pareto" in out
    assert "cheapest feasible" in out
    assert "assay complete" in out


def test_implantable_monitor(capsys):
    out = run_example("implantable_monitor", capsys)
    assert "continuous glucose monitoring" in out
    assert "recalibration" in out


def test_serve_and_query(capsys):
    out = run_example("serve_and_query", capsys)
    assert "diagnostics service listening on port" in out
    assert "alice submitted the dose-response sweep" in out
    assert "cold run streamed 3 grid points" in out
    # Bob's identical sweep is served entirely from the shared warm
    # store: every grid point is a hit and his usage shows zero solves.
    assert out.count("hit ") == 3
    assert "usage[bob]: 1 run(s), 3 job(s), 0 solve step(s)" in out
    assert "served, streamed, and warmed: ok" in out


def test_parameter_sweep(capsys):
    out = run_example("parameter_sweep", capsys)
    assert "6 grid points" in out
    assert "dose response" in out
    # First sweep is all cold, the extended grid reuses its 6 shared
    # points and simulates only the 2 new ones.
    assert "grid points cached: 0/6" in out
    assert "grid points cached: 6/8" in out
    assert "done dose#6" in out and "hit  dose#5" in out
