"""Michaelis-Menten kinetics: rate law, inversion, transport coupling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chem.kinetics import (
    MichaelisMentenFilm,
    competitive_inhibition,
    linear_range_upper_bound,
    michaelis_menten,
    michaelis_menten_inverse,
    steady_state_surface_concentration,
    steady_state_turnover_flux,
)
from repro.errors import ChemistryError

vmax_values = st.floats(min_value=1e-9, max_value=1e-3)
km_values = st.floats(min_value=1e-3, max_value=1e3)
conc_values = st.floats(min_value=0.0, max_value=1e3)
mass_transfer_values = st.floats(min_value=1e-8, max_value=1e-3)


class TestRateLaw:
    def test_half_rate_at_km(self):
        assert michaelis_menten(30.0, 2.0e-5, 30.0) == pytest.approx(1.0e-5)

    def test_zero_at_zero(self):
        assert michaelis_menten(0.0, 1e-5, 10.0) == 0.0

    def test_negative_concentration_clipped(self):
        # Solvers can undershoot by rounding; the rate must not go negative.
        assert michaelis_menten(-1e-9, 1e-5, 10.0) == 0.0

    def test_vectorized(self):
        c = np.array([0.0, 10.0, 1e6])
        v = michaelis_menten(c, 1e-5, 10.0)
        assert v.shape == c.shape
        assert v[0] == 0.0
        assert v[1] == pytest.approx(0.5e-5)
        assert v[2] == pytest.approx(1e-5, rel=1e-4)

    @given(conc_values, vmax_values, km_values)
    def test_bounded_by_vmax(self, c, vmax, km):
        assert 0.0 <= michaelis_menten(c, vmax, km) <= vmax

    @given(vmax_values, km_values,
           st.floats(min_value=1e-3, max_value=1e2),
           st.floats(min_value=1e-3, max_value=1e2))
    def test_monotone_in_concentration(self, vmax, km, c1, dc):
        v1 = michaelis_menten(c1, vmax, km)
        v2 = michaelis_menten(c1 + dc, vmax, km)
        assert v2 >= v1


class TestInverse:
    @given(vmax_values, km_values, st.floats(min_value=0.01, max_value=0.99))
    def test_round_trip(self, vmax, km, fraction):
        rate = fraction * vmax
        c = michaelis_menten_inverse(rate, vmax, km)
        assert michaelis_menten(c, vmax, km) == pytest.approx(rate, rel=1e-9)

    def test_rate_at_vmax_unreachable(self):
        with pytest.raises(ChemistryError, match="unreachable"):
            michaelis_menten_inverse(1e-5, 1e-5, 10.0)


class TestInhibition:
    def test_no_inhibitor_reduces_to_mm(self):
        plain = michaelis_menten(5.0, 1e-5, 10.0)
        inhibited = competitive_inhibition(5.0, 1e-5, 10.0,
                                           inhibitor=0.0, ki=1.0)
        assert inhibited == pytest.approx(plain)

    def test_inhibitor_slows_reaction(self):
        plain = michaelis_menten(5.0, 1e-5, 10.0)
        inhibited = competitive_inhibition(5.0, 1e-5, 10.0,
                                           inhibitor=5.0, ki=1.0)
        assert inhibited < plain

    def test_vmax_unchanged_at_saturation(self):
        # Competitive inhibition raises apparent km but not vmax.
        inhibited = competitive_inhibition(1e9, 1e-5, 10.0,
                                           inhibitor=5.0, ki=1.0)
        assert inhibited == pytest.approx(1e-5, rel=1e-3)


class TestFilm:
    def test_scaled_multiplies_vmax_only(self):
        film = MichaelisMentenFilm(vmax=1e-5, km=10.0)
        boosted = film.scaled(4.0)
        assert boosted.vmax == pytest.approx(4e-5)
        assert boosted.km == film.km

    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            MichaelisMentenFilm(vmax=0.0, km=10.0)
        with pytest.raises(Exception):
            MichaelisMentenFilm(vmax=1e-5, km=0.0)


class TestTransportCoupling:
    @given(conc_values, vmax_values, km_values, mass_transfer_values)
    def test_surface_concentration_below_bulk(self, cb, vmax, km, m):
        film = MichaelisMentenFilm(vmax=vmax, km=km)
        cs = steady_state_surface_concentration(cb, film, m)
        assert 0.0 <= cs <= cb * (1.0 + 1e-9)

    @given(conc_values, vmax_values, km_values, mass_transfer_values)
    def test_flux_balances_supply(self, cb, vmax, km, m):
        # At steady state the film consumes exactly what diffusion brings.
        film = MichaelisMentenFilm(vmax=vmax, km=km)
        cs = steady_state_surface_concentration(cb, film, m)
        consumption = film.rate(cs)
        supply = m * (cb - cs)
        assert consumption == pytest.approx(supply, rel=1e-6, abs=1e-18)

    def test_fast_kinetics_transport_limited(self):
        # vmax >> m*km: surface concentration ~ 0, flux ~ m*cb.
        film = MichaelisMentenFilm(vmax=1.0, km=1.0)
        m = 1e-6
        flux = steady_state_turnover_flux(2.0, film, m)
        assert flux == pytest.approx(m * 2.0, rel=1e-3)

    def test_slow_kinetics_kinetically_limited(self):
        # vmax << m*km: surface ~ bulk, flux ~ MM(cb).
        film = MichaelisMentenFilm(vmax=1e-9, km=10.0)
        m = 1e-3
        flux = steady_state_turnover_flux(2.0, film, m)
        assert flux == pytest.approx(film.rate(2.0), rel=1e-3)

    def test_zero_bulk_zero_flux(self):
        film = MichaelisMentenFilm(vmax=1e-5, km=10.0)
        assert steady_state_turnover_flux(0.0, film, 1e-6) == 0.0


class TestLinearRange:
    def test_upper_bound_scales_with_km(self):
        m = 1e-5
        low = linear_range_upper_bound(
            MichaelisMentenFilm(vmax=1e-6, km=5.0), m)
        high = linear_range_upper_bound(
            MichaelisMentenFilm(vmax=1e-6, km=50.0), m)
        assert high > low

    def test_needs_reasonable_tolerance(self):
        film = MichaelisMentenFilm(vmax=1e-6, km=10.0)
        with pytest.raises(ChemistryError):
            linear_range_upper_bound(film, 1e-5, non_linearity=0.6)
