"""Fault-tolerant execution: supervision, retry, degradation, injection.

Pins the acceptance bar of the resilience layer:

- under injected worker crashes, hangs and transient engine errors, a
  supervised fleet retries to completion **bit-identical** to the
  fault-free inline run (faults live in the executor, never the spec,
  so both runs share every spec hash and job key),
- with retries exhausted and ``on_error="partial"`` the surviving jobs
  stay bit-identical and the failed jobs stream as
  ``FailedAssayRecord`` entries carrying their attempt counts,
- ``on_error="raise"`` (the default) aborts with ``ExecutionError``
  (never ``SpecError`` — a bad run is not a bad spec),
- the ``RetryPolicy`` rides in the execution block (schema v4) and
  older spec files keep loading,
- the ``FaultInjector`` is deterministic: seeded rules, reproducible
  decisions, environment-driven arming,
- a degraded run never persists its failed jobs, so a warm store
  re-run completes exactly the jobs that failed,
- an abandoned supervised stream shuts its workers down in bounded
  time.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import api
from repro.api.records import FailedAssayRecord
from repro.api.resilience import (
    FaultInjector,
    FaultRule,
    RetryPolicy,
    supervise_fleet,
    supervise_inline,
)
from repro.errors import ExecutionError, SpecError

CA_DWELL = 2.0  # short dwell keeps the suite fast; physics unchanged


def small_fleet(cells: int = 4, seed: int = 40) -> api.FleetSpec:
    return api.FleetSpec.homogeneous(cells=cells, seed=seed,
                                     ca_dwell=CA_DWELL)


def assert_records_identical(ref, got):
    """Full bit-identity: provenance, every trace sample, every readout."""
    assert ref.job_name == got.job_name
    assert ref.seed == got.seed
    assert ref.spec_hash == got.spec_hash
    assert ref.spec == got.spec
    assert set(ref.result.traces) == set(got.result.traces)
    for name in ref.result.traces:
        assert np.array_equal(ref.result.traces[name].current,
                              got.result.traces[name].current)
        assert np.array_equal(ref.result.traces[name].true_current,
                              got.result.traces[name].true_current)
    for name in ref.result.voltammograms:
        assert np.array_equal(ref.result.voltammograms[name].current,
                              got.result.voltammograms[name].current)
    for target in ref.result.readouts:
        assert (ref.result.readouts[target].signal
                == got.result.readouts[target].signal)
    assert ref.result.assay_time == got.result.assay_time


class TestRetryPolicy:
    def test_defaults_and_validation(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3 and policy.timeout_s is None
        with pytest.raises(SpecError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SpecError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(SpecError, match="backoff_s"):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(SpecError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(SpecError, match="jitter_s"):
            RetryPolicy(jitter_s=-0.1)

    def test_backoff_is_exponential_and_jitter_deterministic(self):
        policy = RetryPolicy(backoff_s=0.5, backoff_factor=2.0,
                             jitter_s=0.25, jitter_seed=7)
        base1 = policy.delay_s(1, key="cell00")
        base2 = policy.delay_s(2, key="cell00")
        assert 0.5 <= base1 < 0.75
        assert 1.0 <= base2 < 1.25
        # Same (seed, key, attempt) -> same jitter, different key -> not.
        assert policy.delay_s(1, key="cell00") == base1
        assert policy.delay_s(1, key="cell01") != base1

    def test_round_trips_through_dict(self):
        policy = RetryPolicy(max_attempts=5, timeout_s=12.5,
                             backoff_s=0.1, jitter_s=0.05, jitter_seed=3)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert RetryPolicy.from_dict(
            json.loads(json.dumps(policy.to_dict()))) == policy

    def test_from_dict_names_bad_fields(self):
        with pytest.raises(SpecError, match="retry policy.max_attempts"):
            RetryPolicy.from_dict({"max_attempts": "three"})
        with pytest.raises(SpecError, match="expected a JSON object"):
            RetryPolicy.from_dict("nope")


class TestSchemaV4:
    def test_execution_block_carries_retry_and_on_error(self):
        spec = small_fleet(cells=2)
        import dataclasses
        spec = dataclasses.replace(spec, execution=api.ExecutionSpec(
            backend="process", workers=2,
            retry=RetryPolicy(max_attempts=4, timeout_s=60.0),
            on_error="partial"))
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["schema"] == api.SCHEMA_VERSION
        assert payload["execution"]["retry"]["max_attempts"] == 4
        assert payload["execution"]["on_error"] == "partial"
        back = api.spec_from_dict(payload)
        assert back == spec
        assert back.execution.retry.timeout_s == 60.0

    def test_v3_payload_without_retry_still_loads(self):
        payload = small_fleet(cells=2).to_dict()
        payload["schema"] = 3
        del payload["execution"]["retry"]
        del payload["execution"]["on_error"]
        back = api.spec_from_dict(payload)
        assert back.execution.retry is None
        assert back.execution.on_error == "raise"

    def test_bad_on_error_rejected(self):
        payload = small_fleet(cells=2).to_dict()
        payload["execution"]["on_error"] = "ignore"
        with pytest.raises(SpecError, match="on_error"):
            api.spec_from_dict(payload)

    def test_unsupervised_spec_hash_unchanged_by_version_bump(self):
        # Hash covers the payload; the new keys are emitted for every
        # v4 spec, so hashing is stable *within* v4 — and faulted runs
        # never touch the payload at all (pinned below).
        spec = small_fleet(cells=2)
        assert spec.to_dict()["execution"]["retry"] is None


class TestFaultInjector:
    def test_parse_count_rate_and_match(self):
        inj = FaultInjector.parse(
            "worker_crash:1@cell01; engine_error:0.25, worker_hang:2")
        kinds = [(r.kind, r.count, r.rate, r.match) for r in inj.rules]
        assert kinds == [("worker_crash", 1, 0.0, "cell01"),
                         ("engine_error", 0, 0.25, None),
                         ("worker_hang", 2, 0.0, None)]
        assert FaultInjector.parse(inj.describe()).describe() \
            == inj.describe()

    def test_parse_rejects_garbage(self):
        with pytest.raises(SpecError, match="kind:count or kind:rate"):
            FaultInjector.parse("worker_crash")
        with pytest.raises(SpecError, match="not a count or rate"):
            FaultInjector.parse("worker_crash:lots")
        with pytest.raises(SpecError, match="unknown fault kind"):
            FaultInjector.parse("cosmic_ray:1")
        with pytest.raises(SpecError, match="no rules"):
            FaultInjector.parse("  ;  ")

    def test_rule_validation(self):
        with pytest.raises(SpecError, match="exactly one"):
            FaultRule(kind="worker_crash")
        with pytest.raises(SpecError, match="exactly one"):
            FaultRule(kind="worker_crash", count=1, rate=0.5)
        with pytest.raises(SpecError, match="rate must be in"):
            FaultRule(kind="worker_crash", rate=1.5)

    def test_count_rule_fires_below_count_only(self):
        inj = FaultInjector.parse("worker_crash:2")
        assert inj.command(["cell00"], 0) == "crash"
        assert inj.command(["cell00"], 1) == "crash"
        assert inj.command(["cell00"], 2) is None

    def test_match_filters_by_job_name(self):
        inj = FaultInjector.parse("engine_error:1@cell03")
        assert inj.command(["cell00", "cell03"], 0) == "error"
        assert inj.command(["cell00", "cell01"], 0) is None

    def test_crash_beats_hang_beats_error(self):
        inj = FaultInjector.parse(
            "engine_error:1;worker_hang:1;worker_crash:1")
        assert inj.command(["cell00"], 0) == "crash"

    def test_rate_rule_is_seed_deterministic(self):
        a = FaultInjector.parse("engine_error:0.5", seed=1)
        b = FaultInjector.parse("engine_error:0.5", seed=1)
        c = FaultInjector.parse("engine_error:0.5", seed=2)
        names = [f"cell{i:02d}" for i in range(32)]
        decisions_a = [a.command([n], 0) for n in names]
        assert decisions_a == [b.command([n], 0) for n in names]
        assert decisions_a != [c.command([n], 0) for n in names]
        fired = sum(1 for d in decisions_a if d is not None)
        assert 0 < fired < len(names)  # a rate, not a constant

    def test_corrupts_counts_write_opportunities_per_key(self):
        inj = FaultInjector.parse("store_corrupt:1")
        assert inj.corrupts("a" * 64) is True
        assert inj.corrupts("a" * 64) is False  # re-write lands clean
        assert inj.corrupts("b" * 64) is True   # other keys independent

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:1@cell00")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        inj = FaultInjector.from_env()
        assert inj.describe() == "worker_crash:1@cell00"
        assert inj.seed == 7
        monkeypatch.setenv("REPRO_FAULTS_SEED", "many")
        with pytest.raises(SpecError, match="REPRO_FAULTS_SEED"):
            FaultInjector.from_env()


class TestSupervisedRecovery:
    """The headline acceptance bar: faulted == fault-free, bit for bit."""

    def test_crash_hang_and_error_recover_bit_identical(self):
        # 16 cells, workers=4 (so 4-job shards), one shard crashed, one
        # hung past its deadline, one transiently erroring twice (shard,
        # then the half still containing the match) — every failure mode
        # of the issue in one fleet, retried to a stream bit-identical
        # to the fault-free inline reference.
        spec = small_fleet(cells=16, seed=40)
        ref = list(api.iter_results(spec, backend=api.InlineExecutor()))
        inj = FaultInjector.parse("worker_crash:1@cell01;"
                                  "worker_hang:1@cell06;"
                                  "engine_error:2@cell11")
        got = list(supervise_fleet(
            spec, workers=4,
            policy=RetryPolicy(max_attempts=3, timeout_s=4.0),
            injector=inj))
        assert [r.job_name for r in got] == [r.job_name for r in ref]
        for a, b in zip(ref, got):
            assert_records_identical(a, b)
        stats = got[-1].resilience
        assert stats.worker_crashes == 1
        assert stats.worker_hangs == 1
        assert stats.engine_errors == 2
        assert stats.failed_jobs == 0
        assert stats.retries > 0
        assert got[-1].provenance()["resilience"]["worker_crashes"] == 1

    def test_supervised_executor_routes_through_api(self):
        # The same recovery through the public front door: a
        # ProcessExecutor constructed with retry+faults.
        spec = small_fleet(cells=4, seed=50)
        ref = list(api.iter_results(spec))
        backend = api.ProcessExecutor(
            workers=2, retry=RetryPolicy(max_attempts=2),
            faults=FaultInjector.parse("worker_crash:1@cell02"))
        got = list(api.iter_results(spec, backend=backend))
        for a, b in zip(ref, got):
            assert_records_identical(a, b)
        assert got[-1].resilience.worker_crashes == 1

    def test_retry_and_on_error_as_run_arguments(self):
        spec = small_fleet(cells=3, seed=55)
        ref = api.run(spec)
        got = api.run(spec, backend="process",
                      retry=RetryPolicy(max_attempts=2),
                      faults=FaultInjector.parse("engine_error:1@cell00"))
        for a, b in zip(ref.records, got.records):
            assert_records_identical(a, b)
        assert got.resilience is not None
        assert got.resilience.engine_errors == 1
        # retries counts re-dispatched *jobs*: every survivor of the
        # erroring unit went around again.
        assert got.provenance()["resilience"]["retries"] >= 1
        # Fleet engine totals survive supervision.  Splitting a unit
        # breaks dwell fusion, so the faulted run may solve *more*
        # steps — never fewer, and never different results.
        assert got.engine is not None
        assert got.engine.n_solve_steps >= ref.engine.n_solve_steps > 0

    def test_inline_supervision_retries_bit_identical(self):
        spec = small_fleet(cells=3, seed=60)
        ref = list(api.iter_results(spec))
        got = list(supervise_inline(
            spec, policy=RetryPolicy(max_attempts=3),
            injector=FaultInjector.parse("engine_error:1@cell01")))
        for a, b in zip(ref, got):
            assert_records_identical(a, b)
        assert got[-1].resilience.engine_errors == 1
        assert got[-1].resilience.retries == 1

    def test_inline_supervision_via_executor(self):
        spec = small_fleet(cells=2, seed=62)
        ref = list(api.iter_results(spec))
        backend = api.InlineExecutor(
            retry=RetryPolicy(max_attempts=2),
            faults=FaultInjector.parse("worker_crash:1@cell00"))
        # In-process there is no worker to crash: the fault surfaces as
        # a transient engine error and the retry recovers it.
        got = list(api.iter_results(spec, backend=backend))
        for a, b in zip(ref, got):
            assert_records_identical(a, b)
        assert got[-1].resilience.engine_errors == 1


class TestDegradation:
    def test_partial_keeps_survivors_and_reports_failures(self):
        spec = small_fleet(cells=4, seed=70)
        ref = list(api.iter_results(spec))
        inj = FaultInjector.parse("worker_crash:3@cell01")
        got = list(supervise_fleet(
            spec, workers=2, policy=RetryPolicy(max_attempts=3),
            on_error="partial", injector=inj))
        assert [r.job_name for r in got] == [r.job_name for r in ref]
        failed = got[1]
        assert isinstance(failed, FailedAssayRecord)
        assert failed.failed and failed.result is None
        assert failed.attempts == 3
        assert failed.error_type == "BrokenProcessPool"
        assert failed.spec_hash == ref[1].spec_hash  # same job identity
        prov = failed.provenance()
        assert prov["failed"] is True and prov["attempts"] == 3
        for i in (0, 2, 3):
            assert_records_identical(ref[i], got[i])
        stats = got[-1].resilience
        assert stats.failed_jobs == 1 and stats.worker_crashes == 3

    def test_raise_mode_aborts_with_execution_error(self):
        spec = small_fleet(cells=3, seed=72)
        inj = FaultInjector.parse("worker_crash:2@cell01")
        with pytest.raises(ExecutionError, match="cell01"):
            list(supervise_fleet(
                spec, workers=2, policy=RetryPolicy(max_attempts=2),
                injector=inj))

    def test_partial_fleet_record_counts_failures(self):
        spec = small_fleet(cells=3, seed=74)
        # workers=3 -> singleton shards, so the crash takes down only
        # cell01 even with no retry budget for collateral members.
        record = api.run(spec, backend=api.ProcessExecutor(
            workers=3, retry=RetryPolicy(max_attempts=1),
            on_error="partial",
            faults=FaultInjector.parse("worker_crash:1@cell01")))
        assert record.n_failed == 1
        assert record.provenance()["n_failed"] == 1
        assert record.records[1].failed
        # Engine totals come from the surviving jobs.
        assert record.engine is not None
        assert record.engine.n_solve_steps > 0
        # The result summary names the failure instead of readouts.
        jobs = record.to_dict()["result"]["jobs"]
        assert jobs[1]["failed"] is True
        assert jobs[1]["error_type"] == "BrokenProcessPool"

    def test_inline_partial_degrades_too(self):
        spec = small_fleet(cells=3, seed=76)
        got = list(supervise_inline(
            spec, policy=RetryPolicy(max_attempts=2), on_error="partial",
            injector=FaultInjector.parse("engine_error:9@cell02")))
        assert [r.failed for r in got] == [False, False, True]
        assert got[2].attempts == 2
        with pytest.raises(ExecutionError, match="cell02"):
            list(supervise_inline(
                spec, policy=RetryPolicy(max_attempts=2),
                injector=FaultInjector.parse("engine_error:9@cell02")))


class TestStoreInteraction:
    def test_failed_jobs_are_not_persisted_and_rerun_warm(self, tmp_path):
        spec = small_fleet(cells=3, seed=80)
        store = api.RunStore(tmp_path)
        record = api.run(spec, store=store, backend=api.ProcessExecutor(
            workers=3, retry=RetryPolicy(max_attempts=1),
            on_error="partial",
            faults=FaultInjector.parse("worker_crash:1@cell01")))
        assert record.n_failed == 1
        # Survivors persisted per job; neither the failed job nor the
        # degraded whole-run record entered the store.
        from repro.api.jobs import JobKey
        assert JobKey.for_assay(spec.assays[0]).digest in store
        assert JobKey.for_assay(spec.assays[1]).digest not in store
        assert api.spec_hash(spec) not in store
        # The warm retry (no faults) completes: survivors come from the
        # store, only the failed job re-executes.
        ref = api.run(spec)
        again = api.run(spec, store=store, backend="process",
                        retry=RetryPolicy(max_attempts=1))
        assert again.n_failed == 0
        assert sum(1 for r in again.records if r.cached) == 2
        for a, b in zip(ref.records, again.records):
            assert a.spec_hash == b.spec_hash
            for t in a.result.readouts:
                assert (a.result.readouts[t].signal
                        == b.result.readouts[t].signal)
        # Now fully warm, and the whole-run record persists this time.
        assert api.spec_hash(spec) in store

    def test_store_corruption_heals_through_the_pipeline(self, tmp_path):
        spec = small_fleet(cells=2, seed=82)
        faulted = api.RunStore(
            tmp_path, faults=FaultInjector.parse("store_corrupt:1"))
        first = api.run(spec, store=faulted)  # every write corrupted once
        with pytest.warns(RuntimeWarning, match="quarantined"):
            second = api.run(spec, store=faulted)  # heals: re-runs, rewrites
        assert second.cached is False
        assert second.store_stats.quarantined > 0
        assert second.spec_hash == first.spec_hash
        clean = api.RunStore(tmp_path)
        third = api.run(spec, store=clean)
        assert third.cached is True  # the healed store serves warm


class TestAbandonedStream:
    def test_supervised_stream_close_is_bounded(self):
        spec = small_fleet(cells=4, seed=84)
        stream = api.iter_results(
            spec, backend=api.ProcessExecutor(
                workers=2, retry=RetryPolicy(max_attempts=2)))
        first = next(stream)
        assert first.job_name == "cell00"
        start = time.perf_counter()
        stream.close()
        assert time.perf_counter() - start < 10.0

    def test_abandoned_hung_worker_does_not_block_close(self):
        spec = small_fleet(cells=4, seed=86)
        inj = FaultInjector.parse("worker_hang:1@cell03")
        stream = supervise_fleet(
            spec, workers=2,
            policy=RetryPolicy(max_attempts=2, timeout_s=30.0),
            injector=inj)
        first = next(stream)  # cell03's shard is sleeping right now
        assert first.job_name == "cell00"
        start = time.perf_counter()
        stream.close()  # must kill the hung worker, not join it
        assert time.perf_counter() - start < 10.0


class TestResolution:
    def test_resolve_executor_applies_overrides(self):
        policy = RetryPolicy(max_attempts=2)
        executor = api.resolve_executor(
            "process", api.ExecutionSpec(workers=3), retry=policy,
            on_error="partial")
        assert isinstance(executor, api.ProcessExecutor)
        assert executor.workers == 3
        assert executor.retry == policy
        assert executor.on_error == "partial"

    def test_block_resilience_builds_supervised_executor(self):
        block = api.ExecutionSpec(backend="inline",
                                  retry=RetryPolicy(max_attempts=2))
        executor = api.resolve_executor(None, block)
        assert isinstance(executor, api.InlineExecutor)
        assert executor.retry.max_attempts == 2

    def test_instance_rejects_overrides(self):
        with pytest.raises(SpecError, match="already-constructed"):
            api.resolve_executor(api.InlineExecutor(),
                                 retry=RetryPolicy())
        # ...but an instance alongside a block that merely *mentions*
        # resilience passes through untouched (the block configured the
        # spec's own default, not this instance).
        backend = api.InlineExecutor()
        block = api.ExecutionSpec(retry=RetryPolicy(max_attempts=2))
        assert api.resolve_executor(backend, block) is backend

    def test_executor_validation(self):
        with pytest.raises(SpecError, match="on_error"):
            api.ProcessExecutor(on_error="ignore")
        with pytest.raises(SpecError, match="on_error"):
            api.InlineExecutor(on_error="ignore")

    def test_unsupervised_executors_keep_fast_path(self):
        # No retry, default on_error, no faults: the plain executors
        # must not detour through supervision.
        assert api.InlineExecutor()._supervised() is False
        assert api.ProcessExecutor()._supervised() is False
        assert api.ProcessExecutor(
            retry=RetryPolicy(max_attempts=1))._supervised() is True
        assert api.InlineExecutor(on_error="partial")._supervised() is True


class TestCli:
    def test_exhausted_retries_exit_1(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:9@cell01")
        status = main(["fleet", "--cells", "2", "--ca-dwell", "2.0",
                       "--backend", "process", "--workers", "2",
                       "--max-attempts", "1"])
        assert status == 1
        assert "failed after 1 attempt" in capsys.readouterr().err

    def test_partial_mode_prints_fail_and_exits_0(self, monkeypatch,
                                                  capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:9@cell01")
        status = main(["fleet", "--cells", "2", "--ca-dwell", "2.0",
                       "--backend", "process", "--workers", "2",
                       "--max-attempts", "1", "--on-error", "partial"])
        out = capsys.readouterr().out
        assert status == 0
        assert "FAIL cell01" in out
        assert "degraded" in out

    def test_cache_stats_prints_quarantined(self, tmp_path, capsys):
        from repro.cli import main

        api.RunStore(tmp_path).put_job(
            api.run(api.AssaySpec(
                name="solo", seed=5, chain=api.ChainSpec(seed=5),
                protocol=api.PanelProtocolSpec(ca_dwell=CA_DWELL))))
        status = main(["cache", str(tmp_path), "stats"])
        out = capsys.readouterr().out
        assert status == 0
        assert "quarantined: 0" in out
