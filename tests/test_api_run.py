"""The repro.api front door: spec round-trips, bit-identity, streaming.

Pins the acceptance bar of the spec/run redesign:

- every spec kind survives spec -> JSON -> spec -> run,
- ``run(spec)`` / ``iter_results(spec)`` results are bit-identical to
  the class-level entry points (``PanelProtocol.run``,
  ``AssayScheduler.run_many``, ``run_calibration``),
- the streaming iterator matches ``run_many`` order and content,
- every run record carries spec hash + schema version + seed,
- spec-parsing failures surface as SpecError naming the offending
  key/path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.analysis import run_calibration
from repro.data import (
    PAPER_PANEL_MID_CONCENTRATIONS,
    bench_chain,
    integrated_chain,
    paper_panel_cell,
    performance_record,
    reference_cell,
)
from repro.data.catalog import table1_working_electrode
from repro.engine import AssayJob, AssayScheduler
from repro.errors import ProtocolError, SpecError
from repro.io.export import run_record_to_json
from repro.measurement import PanelProtocol

CA_DWELL = 6.0  # short dwell keeps the suite fast; physics unchanged


def quick_spec(seed: int = 7, name: str = "quick", **protocol) -> api.AssaySpec:
    protocol.setdefault("ca_dwell", CA_DWELL)
    return api.AssaySpec(name=name, seed=seed,
                         chain=api.ChainSpec(seed=seed),
                         protocol=api.PanelProtocolSpec(**protocol))


def assert_panel_results_equal(ref, got):
    assert set(ref.traces) == set(got.traces)
    for name in ref.traces:
        assert np.array_equal(ref.traces[name].current,
                              got.traces[name].current)
        assert np.array_equal(ref.traces[name].true_current,
                              got.traces[name].true_current)
    assert set(ref.voltammograms) == set(got.voltammograms)
    for name in ref.voltammograms:
        assert np.array_equal(ref.voltammograms[name].current,
                              got.voltammograms[name].current)
    assert set(ref.readouts) == set(got.readouts)
    for target in ref.readouts:
        assert ref.readouts[target].signal == got.readouts[target].signal
        assert ref.readouts[target].we_name == got.readouts[target].we_name
    assert ref.assay_time == got.assay_time
    assert ref.blank_current == got.blank_current


class TestSpecRoundTrips:
    def _round_trip(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        return api.spec_from_dict(payload)

    def test_assay_round_trip(self):
        spec = quick_spec(seed=3)
        back = self._round_trip(spec)
        assert back == spec
        assert api.spec_hash(back) == api.spec_hash(spec)

    def test_assay_with_injections_round_trip(self):
        spec = quick_spec(injections=(
            api.InjectionEvent(2.0, "glucose", 1.0),
            api.InjectionEvent(4.0, "lactate", 0.5)))
        back = self._round_trip(spec)
        assert back == spec

    def test_assay_with_per_we_injections_round_trip(self):
        spec = quick_spec(injections={
            "WE1": (api.InjectionEvent(2.0, "glucose", 1.0),)})
        back = self._round_trip(spec)
        assert back.protocol.injections["WE1"] == \
            spec.protocol.injections["WE1"]

    def test_fleet_round_trip(self):
        spec = api.FleetSpec.homogeneous(cells=3, seed=9, ca_dwell=CA_DWELL)
        back = self._round_trip(spec)
        assert back == spec
        assert len(back) == 3
        assert back.assays[2].seed == 11

    def test_calibration_round_trip(self):
        spec = api.CalibrationSpec(target="lactate", points=5, seed=4)
        assert self._round_trip(spec) == spec

    def test_explore_round_trip(self):
        from repro.core import panel_to_dict, paper_panel_spec
        spec = api.ExploreSpec(panel=panel_to_dict(paper_panel_spec()))
        assert self._round_trip(spec) == spec

    def test_platform_round_trip(self):
        design = _mini_design_payload()
        spec = api.PlatformSpec(design=design,
                                concentrations={"glucose": 2.0},
                                ca_dwell=CA_DWELL)
        assert self._round_trip(spec) == spec

    def test_hash_changes_with_content(self):
        assert api.spec_hash(quick_spec(seed=1)) != \
            api.spec_hash(quick_spec(seed=2))

    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "assay.json"
        path.write_text(json.dumps(quick_spec().to_dict()))
        loaded = api.load_spec(path)
        assert loaded == quick_spec()


class TestSpecErrors:
    def test_unknown_kind_named(self):
        with pytest.raises(SpecError, match="unknown spec kind 'bogus'"):
            api.spec_from_dict({"schema": 1, "kind": "bogus"})

    def test_missing_kind_named(self):
        with pytest.raises(SpecError, match="missing required key 'kind'"):
            api.spec_from_dict({"schema": 1})

    def test_wrong_schema_version(self):
        payload = quick_spec().to_dict()
        payload["schema"] = 99
        with pytest.raises(SpecError, match="unsupported schema version"):
            api.spec_from_dict(payload)

    def test_bad_injection_path_in_message(self):
        payload = quick_spec().to_dict()
        payload["protocol"]["injections"] = [{"time": 1.0}]
        with pytest.raises(SpecError,
                           match=r"injections\[0\].*'species'"):
            api.spec_from_dict(payload)

    def test_fleet_assay_path_in_message(self):
        payload = api.FleetSpec.homogeneous(cells=2).to_dict()
        del payload["assays"][1]["kind"]
        with pytest.raises(SpecError, match=r"assays\[1\]"):
            api.spec_from_dict(payload)

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            api.load_spec(tmp_path / "missing.json")

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            api.load_spec(path)

    def test_calibration_needs_two_points(self):
        with pytest.raises(SpecError, match="points"):
            api.spec_from_dict({"schema": 1, "kind": "calibration",
                                "target": "glucose", "points": 1})

    def test_unknown_calibration_target(self):
        with pytest.raises(SpecError, match="no performance record"):
            api.run(api.CalibrationSpec(target="unobtainium"))

    def test_run_rejects_non_spec(self):
        with pytest.raises(SpecError, match="not a runnable spec"):
            api.run(object())


class TestRunBitIdentity:
    def test_assay_matches_direct_protocol_run(self):
        record = api.run(quick_spec(seed=7))
        ref = PanelProtocol(ca_dwell=CA_DWELL).run(
            paper_panel_cell(),
            integrated_chain("cyp_micro", n_channels=5, seed=7),
            rng=np.random.default_rng(7))
        assert_panel_results_equal(ref, record.result)

    def test_sequential_assay_matches_reference_path(self):
        record = api.run(quick_spec(seed=5, batch_electrodes=False))
        assert record.engine is None
        ref = PanelProtocol(ca_dwell=CA_DWELL, batch_electrodes=False).run(
            paper_panel_cell(),
            integrated_chain("cyp_micro", n_channels=5, seed=5),
            rng=np.random.default_rng(5))
        assert_panel_results_equal(ref, record.result)

    def test_run_accepts_payload_dict(self):
        record = api.run(quick_spec(seed=7).to_dict())
        assert record.job_name == "quick"
        assert record.seed == 7

    def test_fleet_matches_hand_built_scheduler(self):
        spec = api.FleetSpec.homogeneous(cells=3, seed=13,
                                         ca_dwell=CA_DWELL)
        record = api.run(spec)
        jobs = [AssayJob(cell=paper_panel_cell(),
                         chain=integrated_chain("cyp_micro", n_channels=5,
                                                seed=13 + k),
                         name=f"cell{k:02d}",
                         rng=np.random.default_rng(13 + k))
                for k in range(3)]
        fleet = AssayScheduler(PanelProtocol(ca_dwell=CA_DWELL)).run_many(jobs)
        assert record.names == fleet.names
        assert record.engine.n_fused_dwells == fleet.n_fused_dwells
        assert record.engine.n_dwell_groups == fleet.n_dwell_groups
        for rec, ref in zip(record.records, fleet.results):
            assert_panel_results_equal(ref, rec.result)

    def test_calibration_matches_direct_closure(self):
        record = api.run(api.CalibrationSpec(target="glucose", points=4,
                                             seed=3))
        paper = performance_record("glucose")
        cell = reference_cell("glucose")
        chain = bench_chain(seed=3)
        we = cell.working_electrodes[0]
        e = table1_working_electrode(
            "glucose").effective_h2o2_wave().potential_for_efficiency(0.95)

        def signal_at(c):
            cell.chamber.set_bulk("glucose", c)
            return chain.measure_constant(
                cell.measured_current(we.name, e), duration=5.0, we=we)

        lo, hi = paper.linear_range
        ref = run_calibration(signal_at, list(np.linspace(lo, hi * 1.5, 4)))
        assert ref.blank_mean == record.curve.blank_mean
        assert ref.blank_std == record.curve.blank_std
        for p, q in zip(ref.points, record.curve.points):
            assert (p.concentration, p.signal) == (q.concentration, q.signal)

    def test_cv_detected_target_raises(self):
        with pytest.raises(ProtocolError, match="CV-detected"):
            api.run(api.CalibrationSpec(target="cholesterol"))


class TestStreaming:
    def test_iter_matches_run_many_order_and_content(self):
        spec = api.FleetSpec.homogeneous(cells=4, seed=21,
                                         ca_dwell=CA_DWELL)
        streamed = list(api.iter_results(spec))
        assert [r.job_name for r in streamed] == \
            [f"cell{k:02d}" for k in range(4)]
        collected = api.run(spec)
        for s, c in zip(streamed, collected.records):
            assert s.job_name == c.job_name
            assert_panel_results_equal(c.result, s.result)

    def test_scheduler_run_iter_matches_run_many(self):
        def jobs():
            return [AssayJob(cell=paper_panel_cell(),
                             chain=integrated_chain("cyp_micro",
                                                    n_channels=5,
                                                    seed=31 + k),
                             name=f"j{k}",
                             rng=np.random.default_rng(31 + k))
                    for k in range(3)]

        scheduler = AssayScheduler(PanelProtocol(ca_dwell=CA_DWELL))
        items = list(scheduler.run_iter(jobs()))
        fleet = scheduler.run_many(jobs())
        assert tuple(i.name for i in items) == fleet.names
        assert items[-1].n_fused_dwells == fleet.n_fused_dwells
        assert items[-1].n_dwell_groups == fleet.n_dwell_groups
        for item, ref in zip(items, fleet.results):
            assert_panel_results_equal(ref, item.result)

    def test_lazy_groups_accumulate_per_protocol(self):
        # Two protocol parameter sets -> two dwell groups, simulated
        # lazily: the first job's yield must not have run group 2 yet.
        fast = PanelProtocol(ca_dwell=CA_DWELL)
        slow = PanelProtocol(ca_dwell=2 * CA_DWELL)
        jobs = [AssayJob(cell=paper_panel_cell(),
                         chain=integrated_chain("cyp_micro", n_channels=5,
                                                seed=41 + k),
                         name=f"j{k}", rng=np.random.default_rng(41 + k),
                         protocol=fast if k == 0 else slow)
                for k in range(2)]
        items = list(AssayScheduler().run_iter(jobs))
        assert items[0].n_dwell_groups == 1
        assert items[1].n_dwell_groups == 2
        assert items[1].n_fused_dwells == 2 * items[0].n_fused_dwells

    def test_iter_results_accepts_single_assay(self):
        records = list(api.iter_results(quick_spec(seed=2)))
        assert len(records) == 1
        assert records[0].job_name == "quick"


class TestRunRecords:
    def test_records_carry_provenance(self):
        spec = quick_spec(seed=7)
        record = api.run(spec)
        assert record.spec_hash == api.spec_hash(spec)
        assert record.schema_version == api.SCHEMA_VERSION
        assert record.seed == 7
        assert record.kind == "assay"
        assert record.wall_time_s > 0.0
        assert record.engine.n_dwell_groups == 1

    def test_fleet_records_carry_per_job_provenance(self):
        spec = api.FleetSpec.homogeneous(cells=2, seed=5, ca_dwell=CA_DWELL)
        record = api.run(spec)
        assert record.spec_hash == api.spec_hash(spec)
        assert record.seed is None
        # A fleet has no single seed, but its record carries every
        # job's seed in job order (and exports it in to_dict()).
        assert record.seeds == (5, 6)
        assert record.provenance()["seeds"] == [5, 6]
        assert record.to_dict()["provenance"]["seeds"] == [5, 6]
        for k, rec in enumerate(record.records):
            assert rec.seed == 5 + k
            assert rec.spec_hash == api.spec_hash(spec.assays[k])

    def test_records_report_uncached(self):
        record = api.run(quick_spec(seed=9))
        assert record.cached is False
        assert record.provenance()["cached"] is False

    def test_record_export_json(self, tmp_path):
        record = api.run(quick_spec(seed=7))
        path = run_record_to_json(record, tmp_path / "record.json")
        payload = json.loads(path.read_text())
        assert payload["provenance"]["spec_hash"] == record.spec_hash
        assert payload["spec"] == record.spec
        assert "glucose" in payload["result"]["readouts"]
        assert payload["result"]["engine"]["n_fused_dwells"] > 0

    def test_platform_record(self):
        record = api.run(api.PlatformSpec(
            design=_mini_design_payload(),
            concentrations={"glucose": 2.0}, ca_dwell=CA_DWELL))
        assert record.kind == "platform"
        assert "glucose" in record.result.readouts
        assert "Platform" in record.summary

    def test_explore_record(self):
        from repro.core import panel_to_dict
        from repro.core.targets import PanelSpec, TargetSpec
        mini = PanelSpec(name="mini",
                         targets=(TargetSpec("glucose", 0.5, 4.0),))
        record = api.run(api.ExploreSpec(panel=panel_to_dict(mini)))
        assert record.result.n_feasible > 0
        assert record.to_dict()["result"]["n_pareto"] >= 1


def _mini_design_payload() -> dict:
    from repro.core import (
        design_from_choices,
        design_to_dict,
        probe_options,
    )
    from repro.core.library import PAPER_ELECTRODE_AREA
    from repro.core.targets import PanelSpec, TargetSpec

    panel = PanelSpec(name="mini",
                      targets=(TargetSpec("glucose", 0.5, 4.0),))
    choices = {"glucose": probe_options("glucose")[0]}
    design = design_from_choices(
        panel, choices, structure="shared_chamber", readout="mux_shared",
        noise="cds", nanostructure=None, we_area=PAPER_ELECTRODE_AREA,
        scan_rate=0.02)
    return design_to_dict(design)


class TestSpecShapeGuards:
    """Malformed payload *shapes* surface as SpecError, never TypeError."""

    def test_non_list_fleet_assays(self):
        with pytest.raises(SpecError, match=r"assays: expected a list"):
            api.spec_from_dict({"schema": 1, "kind": "fleet", "assays": 5})

    def test_non_object_platform_design(self):
        with pytest.raises(SpecError, match=r"design: expected"):
            api.spec_from_dict({"schema": 1, "kind": "platform",
                                "design": [1, 2, 3]})

    def test_unhashable_kind(self):
        with pytest.raises(SpecError, match="unknown spec kind"):
            api.spec_from_dict({"schema": 1, "kind": ["assay"]})

    def test_non_list_panel_targets(self):
        from repro.core.spec import panel_from_dict
        with pytest.raises(SpecError, match=r"targets: expected a list"):
            panel_from_dict({"kind": "panel", "schema": 1, "name": "x",
                             "targets": 5})

    def test_non_list_design_assignments(self):
        from repro.core.spec import design_from_dict
        with pytest.raises(SpecError, match=r"assignments: expected a list"):
            design_from_dict({"kind": "design", "schema": 1, "name": "x",
                              "assignments": "nope"})

    def test_numeric_coercion_failures_are_spec_errors(self):
        payload = {"schema": 1, "kind": "calibration",
                   "target": "glucose", "points": "many"}
        with pytest.raises(SpecError, match=r"points: expected an integer"):
            api.spec_from_dict(payload)
        bad_assay = quick_spec().to_dict()
        bad_assay["protocol"]["ca_dwell"] = "long"
        with pytest.raises(SpecError, match=r"ca_dwell: expected a number"):
            api.spec_from_dict(bad_assay)

    def test_string_batch_electrodes_rejected(self):
        payload = quick_spec().to_dict()
        payload["protocol"]["batch_electrodes"] = "false"
        with pytest.raises(SpecError, match="batch_electrodes"):
            api.spec_from_dict(payload)

    def test_empty_fleet_rejected_at_construction(self):
        with pytest.raises(SpecError, match="at least one assay"):
            api.FleetSpec()

    def test_hash_stable_for_handwritten_int_fields(self):
        spec = api.AssaySpec(
            protocol=api.PanelProtocolSpec(ca_dwell=30))  # int, not float
        payload = json.loads(json.dumps(spec.to_dict()))
        payload["protocol"]["ca_dwell"] = 30  # as a hand-written file
        assert api.spec_hash(payload) == api.spec_hash(spec)
        assert api.spec_hash(api.spec_from_dict(payload)) == \
            api.spec_hash(spec)

    def test_non_integral_seed_rejected(self):
        with pytest.raises(SpecError, match=r"seed: expected an integer"):
            api.spec_from_dict({"schema": 1, "kind": "assay", "seed": 7.9})

    def test_embedded_design_payload_canonicalised_for_hash(self):
        import copy
        design = _mini_design_payload()
        handwritten = copy.deepcopy(design)
        del handwritten["nanostructure"]  # optional key omitted in a file
        assert api.spec_hash(api.PlatformSpec(design=design)) == \
            api.spec_hash(api.PlatformSpec(design=handwritten))

    def test_bool_and_string_numbers_rejected(self):
        payload = quick_spec().to_dict()
        payload["protocol"]["ca_dwell"] = True
        with pytest.raises(SpecError, match=r"ca_dwell: expected a number"):
            api.spec_from_dict(payload)
        payload["protocol"]["ca_dwell"] = "30"
        with pytest.raises(SpecError, match=r"ca_dwell: expected a number"):
            api.spec_from_dict(payload)

    def test_reference_cell_applies_concentrations(self):
        cell = api.CellSpec(kind="reference", target="glucose",
                            concentrations={"glucose": 2.7}).build()
        assert cell.chamber.bulk("glucose") == 2.7

    def test_paper_panel_rejects_target(self):
        with pytest.raises(SpecError, match="only for kind 'reference'"):
            api.CellSpec(kind="paper_panel", target="glucose").build()

    def test_bench_chain_hash_ignores_irrelevant_fields(self):
        a = api.ChainSpec(kind="bench", readout="cyp", n_channels=3, seed=1)
        b = api.ChainSpec(kind="bench", seed=1)
        assert a.to_dict() == b.to_dict()

    def test_unknown_reference_target_is_spec_error(self):
        spec = api.AssaySpec(cell=api.CellSpec(kind="reference",
                                               target="bogus"))
        with pytest.raises(SpecError, match="bogus"):
            api.run(spec)

    def test_string_numbers_in_panel_targets_are_spec_errors(self):
        from repro.core.spec import panel_from_dict
        with pytest.raises(SpecError, match="malformed"):
            panel_from_dict({"schema": 1, "kind": "panel", "name": "p",
                             "targets": [{"species": "glucose",
                                          "c_min": "0.5", "c_max": 4.0}]})


class TestScreening:
    """The opt-in screening profile: provenance-flagged, never default.

    Screening swaps in a coarser chemistry grid — it changes physics —
    so it must be content-addressed apart from its full-fidelity twin
    at every granularity (spec hash and per-job key), stamped into
    record provenance, and engaged only by explicit request.
    """

    def test_screening_spec_has_distinct_hash_and_job_key(self):
        import dataclasses

        full = quick_spec(seed=11)
        screening = dataclasses.replace(full, screening=True)
        assert api.spec_hash(screening) != api.spec_hash(full)
        assert (api.JobKey.for_assay(screening).digest
                != api.JobKey.for_assay(full).digest)

    def test_screening_round_trips(self):
        import dataclasses

        spec = dataclasses.replace(quick_spec(seed=3), screening=True)
        back = api.spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.screening is True
        # Default payloads omit nothing: the flag is always emitted, so
        # the canonical payload (and hash) is stable across round trips.
        assert quick_spec(seed=3).to_dict()["screening"] is False

    def test_default_run_is_full_fidelity(self):
        record = api.run(quick_spec(seed=21))
        assert record.provenance()["screening"] is False

    def test_screening_kwarg_flags_provenance_and_changes_physics(self):
        import dataclasses

        spec = quick_spec(seed=21)
        full = api.run(spec)
        screened = api.run(spec, screening=True)
        assert screened.provenance()["screening"] is True
        assert screened.spec_hash != full.spec_hash
        # The kwarg is shorthand for the spec field: identical record.
        explicit = api.run(dataclasses.replace(spec, screening=True))
        assert explicit.spec_hash == screened.spec_hash
        assert np.array_equal(
            explicit.result.traces["WE1"].current,
            screened.result.traces["WE1"].current)
        # Coarser grid -> different chemistry than the full run.
        assert not np.array_equal(
            screened.result.traces["WE1"].true_current,
            full.result.traces["WE1"].true_current)

    def test_screening_and_full_runs_coexist_in_one_store(self, tmp_path):
        spec = quick_spec(seed=33)
        store = api.RunStore(tmp_path / "runs")
        full = api.run(spec, store=store)
        screened = api.run(spec, store=store, screening=True)
        assert not full.cached and not screened.cached
        # Re-runs hit their own entries; neither shadows the other.
        assert api.run(spec, store=store).cached
        again = api.run(spec, store=store, screening=True)
        assert again.cached and again.spec_hash == screened.spec_hash

    def test_screening_kwarg_applies_to_fleets_and_sweeps(self):
        fleet = api.FleetSpec.homogeneous(cells=2, seed=5,
                                          ca_dwell=CA_DWELL)
        record = api.run(fleet, screening=True)
        assert record.provenance()["screening"] is True
        for rec in record.records:
            assert rec.provenance()["screening"] is True
        sweep = api.SweepSpec(base=quick_spec(seed=2),
                              grid={"seed": [2, 3]}, screening=True)
        compiled = sweep.compile()
        assert all(assay.screening for assay in compiled.assays)

    def test_screening_kwarg_rejected_for_other_kinds(self):
        spec = api.CalibrationSpec(target="glucose", points=3, seed=1)
        with pytest.raises(SpecError, match="screening"):
            api.run(spec, screening=True)
