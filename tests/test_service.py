"""Diagnostics-as-a-service: server lifecycle, scheduling, metering.

Pins the acceptance bar of the service layer:

- submit -> stream -> status happy path, with streamed records
  **bit-identical** to inline ``api.run(spec)`` — cold, cached and
  screening paths included (the service adds scheduling and transport,
  never physics),
- cancel: a queued run is dequeued without ever touching an executor; a
  running run's stream is abandoned deterministically mid-flight and
  the pending engine work actually stops,
- a drained token bucket is 429 → :class:`RateLimitError` with the
  server's suggested backoff; a malformed spec is 400 →
  :class:`SpecError`; an execution-time failure is 500 →
  :class:`ExecutionError` — symmetric with what an inline run raises,
- the priority queue schedules full-fidelity before ``screening`` and
  round-robins across clients within a tier,
- ``ServeSpec`` round-trips through JSON like every other spec kind,
  and the rate limiter / usage ledger behave with an injectable clock.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import api
from repro.api.resilience import RetryPolicy
from repro.errors import (
    ExecutionError,
    RateLimitError,
    ServiceError,
    SpecError,
)
from repro.service import (
    DiagnosticsServer,
    PriorityJobQueue,
    RateLimiter,
    ServeSpec,
    ServiceClient,
    TokenBucket,
    UsageLedger,
)
import repro.service.runtime as runtime_mod
from repro.service.runtime import record_to_wire

CA_DWELL = 6.0  # short dwell keeps the suite fast; physics unchanged

# Per-record provenance keys that legitimately vary between equivalent
# executions (timing, cache disposition, store shape); everything else
# must match bit for bit.
_VOLATILE_PROVENANCE = ("wall_time_s", "store", "cached")


def small_fleet(cells: int = 2, seed: int = 40) -> api.FleetSpec:
    return api.FleetSpec.homogeneous(cells=cells, seed=seed,
                                     ca_dwell=CA_DWELL)


def canon(wire: dict) -> dict:
    """A wire record normalised for bit-identity comparison: JSON
    round-tripped (exactly what the HTTP layer does) with volatile
    provenance stripped."""
    wire = json.loads(json.dumps(wire))
    provenance = wire.get("provenance")
    if isinstance(provenance, dict):
        for key in _VOLATILE_PROVENANCE:
            provenance.pop(key, None)
    return wire


def wait_for(predicate, timeout: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def server(tmp_path):
    spec = ServeSpec(dispatchers=2, store=str(tmp_path / "store"))
    with DiagnosticsServer(spec) as srv:
        yield srv


# ---------------------------------------------------------------------------
# ServeSpec: the deployment is a spec like any other
# ---------------------------------------------------------------------------

class TestServeSpec:
    def test_json_round_trip(self):
        spec = ServeSpec(host="0.0.0.0", port=8123, backend="process",
                         workers=3, dispatchers=4, store="/tmp/store",
                         rate_capacity=5.0, rate_refill_per_s=2.0,
                         retry=RetryPolicy(max_attempts=2),
                         on_error="partial")
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ServeSpec.from_dict(payload) == spec
        assert payload["kind"] == "serve"

    def test_defaults_round_trip(self):
        assert ServeSpec.from_dict(ServeSpec().to_dict()) == ServeSpec()

    @pytest.mark.parametrize("kwargs", [
        {"backend": "quantum"},
        {"port": 70000},
        {"workers": 0},
        {"dispatchers": 0},
        {"rate_capacity": -1.0},
        {"rate_refill_per_s": 0.0},
        {"on_error": "ignore"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(SpecError):
            ServeSpec(**kwargs)

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(SpecError, match="kind"):
            ServeSpec.from_dict({"kind": "assay"})


# ---------------------------------------------------------------------------
# PriorityJobQueue: tier before everything, fairness within a tier
# ---------------------------------------------------------------------------

class _StubJob:
    def __init__(self, job_id: str) -> None:
        self.id = job_id


class TestPriorityJobQueue:
    def test_round_robin_across_clients_preserves_client_fifo(self):
        q = PriorityJobQueue()
        for name in ("a1", "a2", "a3"):
            q.push(_StubJob(name), client="alice")
        q.push(_StubJob("b1"), client="bob")
        order = [q.pop(timeout=0).id for _ in range(4)]
        # bob's single job is served second, not behind alice's backlog;
        # alice's own jobs keep their submission order.
        assert order == ["a1", "b1", "a2", "a3"]

    def test_screening_never_delays_full_fidelity(self):
        q = PriorityJobQueue()
        q.push(_StubJob("scout"), client="alice", screening=True)
        q.push(_StubJob("clinical"), client="bob")
        assert q.pop(timeout=0).id == "clinical"
        assert q.pop(timeout=0).id == "scout"

    def test_remove_dequeues_and_reports_absence(self):
        q = PriorityJobQueue()
        q.push(_StubJob("j1"), client="alice")
        q.push(_StubJob("j2"), client="alice")
        assert q.remove("j1") is True
        assert q.remove("j1") is False          # already gone
        assert q.remove("never-queued") is False
        assert q.depth()["total"] == 1
        assert q.pop(timeout=0).id == "j2"

    def test_depth_reports_tiers_and_clients(self):
        q = PriorityJobQueue()
        q.push(_StubJob("n1"), client="alice")
        q.push(_StubJob("s1"), client="alice", screening=True)
        q.push(_StubJob("n2"), client="bob")
        depth = q.depth()
        assert depth == {"total": 3, "normal": 2, "screening": 1,
                         "clients": {"alice": 2, "bob": 1}}

    def test_pop_times_out_empty(self):
        assert PriorityJobQueue().pop(timeout=0.01) is None

    def test_close_wakes_pops_and_rejects_pushes_but_drains(self):
        q = PriorityJobQueue()
        q.push(_StubJob("queued-before-close"), client="alice")
        q.close()
        with pytest.raises(ServiceError):
            q.push(_StubJob("late"), client="alice")
        assert q.pop(timeout=0).id == "queued-before-close"
        assert q.pop(timeout=10) is None        # returns, doesn't block


# ---------------------------------------------------------------------------
# Rate limiting + usage accounting (injectable clock: no sleeps)
# ---------------------------------------------------------------------------

class TestRateLimiting:
    def test_token_bucket_drains_and_refills(self):
        now = [0.0]
        bucket = TokenBucket(capacity=2, refill_per_s=1.0,
                             clock=lambda: now[0])
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire() == (True, 0.0)
        ok, retry_after = bucket.try_acquire()
        assert not ok and retry_after == pytest.approx(1.0)
        now[0] = 1.0                             # one token refilled
        assert bucket.try_acquire() == (True, 0.0)

    def test_limiter_keys_are_independent(self):
        now = [0.0]
        limiter = RateLimiter(capacity=1, refill_per_s=1.0,
                              clock=lambda: now[0])
        assert limiter.try_acquire("alice")[0]
        assert not limiter.try_acquire("alice")[0]
        assert limiter.try_acquire("bob")[0]     # own bucket

    def test_zero_capacity_disables_limiting(self):
        limiter = RateLimiter(capacity=0, refill_per_s=1.0)
        assert not limiter.enabled
        assert all(limiter.try_acquire("x")[0] for _ in range(100))

    def test_ledger_persists_and_reloads(self, tmp_path):
        path = tmp_path / "usage.json"
        ledger = UsageLedger(path)
        ledger.note_submitted("alice")
        ledger.note_completed("alice", jobs=3, solve_steps=120,
                              wall_time_s=0.5)
        ledger.note_rejected("mallory")
        reloaded = UsageLedger(path).snapshot()
        assert reloaded["alice"] == {"runs": 1, "jobs": 3,
                                     "solve_steps": 120,
                                     "wall_time_s": 0.5, "rejected": 0}
        assert reloaded["mallory"]["rejected"] == 1


# ---------------------------------------------------------------------------
# Server lifecycle: the HTTP contract end to end
# ---------------------------------------------------------------------------

class TestServerLifecycle:
    def test_submit_stream_status_happy_path(self, server):
        spec = small_fleet(cells=2, seed=96)
        client = ServiceClient(server.port, api_key="alice")

        health = client.health()
        assert health["status"] == "ok"
        assert health["backend"] == "inline"

        submitted = client.submit(spec)
        job_id = submitted["id"]
        assert submitted["status"] in ("queued", "running", "done")

        records = client.records(job_id)
        inline = [record_to_wire(r) for r in api.iter_results(spec)]
        assert [canon(r) for r in records] == [canon(w) for w in inline]

        status = client.status(job_id)
        assert status["status"] == "done"
        assert status["kind"] == "fleet"
        assert status["client"] == "alice"
        assert status["n_records"] == status["n_jobs"] == 2
        assert status["provenance"]["spec_hash"] \
            == inline[-1]["provenance"]["spec_hash"]

        stats = client.stats()
        assert stats["jobs"].get("done", 0) >= 1
        assert stats["usage"]["alice"]["runs"] == 1
        assert stats["usage"]["alice"]["jobs"] == 2
        assert stats["usage"]["alice"]["solve_steps"] > 0
        assert stats["store"]["misses"] == 2

    def test_cached_and_screening_paths_stay_bit_identical(self, server):
        spec = small_fleet(cells=2, seed=97)
        alice = ServiceClient(server.port, api_key="alice")
        bob = ServiceClient(server.port, api_key="bob")

        cold = alice.records(alice.submit(spec)["id"])
        assert all(not r["provenance"]["cached"] for r in cold)

        # A different client, the same study: served entirely from the
        # shared warm store — and byte-for-byte what an *inline* warm
        # replay over that same store yields.
        warm = bob.records(bob.submit(spec)["id"])
        assert all(r["provenance"]["cached"] for r in warm)
        inline_warm = [record_to_wire(r) for r in api.iter_results(
            spec, store=api.RunStore(server.spec.store))]
        assert [canon(r) for r in warm] == [canon(w) for w in inline_warm]
        # The physics payload of a cache hit is the cold run's, exactly.
        for c, w in zip(cold, warm):
            assert w["samples"] == c["samples"]
            assert w["result"]["readouts"] == c["result"]["readouts"]
        assert server.runtime.stats()["usage"]["bob"]["solve_steps"] == 0

        # Screening is its own content-addressed family — still
        # bit-identical to inline screening execution.
        screening = alice.records(alice.submit(spec, screening=True)["id"])
        inline = [record_to_wire(r)
                  for r in api.iter_results(spec, screening=True)]
        assert [canon(r) for r in screening] == [canon(w) for w in inline]
        assert [canon(r) for r in screening] != [canon(r) for r in cold]

    def test_wait_submit_returns_terminal_status(self, server):
        client = ServiceClient(server.port)
        status = client.submit(small_fleet(cells=1, seed=98), wait=True)
        assert status["status"] == "done"
        assert status["n_records"] == 1
        assert "wall_time_s" in status

    def test_stream_without_samples_drops_only_samples(self, server):
        spec = small_fleet(cells=1, seed=99)
        client = ServiceClient(server.port)
        job_id = client.submit(spec)["id"]
        full = client.records(job_id, samples=True)
        slim = client.records(job_id, samples=False)
        assert "samples" in full[0] and "samples" not in slim[0]
        assert canon(slim[0]) == canon(
            {k: v for k, v in full[0].items() if k != "samples"})

    def test_cancel_mid_stream_stops_pending_work(self, monkeypatch):
        real_iter = runtime_mod.iter_results
        gate = threading.Event()        # test-controlled: releases rec 2
        inner_closed = threading.Event()

        def gated(spec, **kwargs):
            inner = real_iter(spec, **kwargs)

            def gen():
                try:
                    it = iter(inner)
                    yield next(it)              # first record flows
                    assert gate.wait(timeout=30)
                    for record in it:
                        yield record
                finally:
                    inner.close()               # pending engine work stops
                    inner_closed.set()

            return gen()

        monkeypatch.setattr(runtime_mod, "iter_results", gated)
        spec = small_fleet(cells=3, seed=90)
        with DiagnosticsServer(ServeSpec(dispatchers=1)) as server:
            client = ServiceClient(server.port)
            job_id = client.submit(spec)["id"]
            wait_for(lambda: client.status(job_id)["n_records"] == 1,
                     what="first record")
            client.cancel(job_id)       # dispatcher is parked at the gate
            gate.set()                  # record 2 arrives, cancel trips
            wait_for(lambda: client.status(job_id)["status"] == "cancelled",
                     what="cancellation to settle")
            status = client.status(job_id)
            assert status["n_records"] == 2     # record 3 never produced
            assert inner_closed.wait(timeout=10)
            # The stream endpoint of a cancelled run terminates cleanly.
            lines = list(client.stream(job_id, samples=False))
            assert lines[-1] == {"event": "end", "id": job_id,
                                 "status": "cancelled", "n_records": 2}

    def test_cancel_queued_job_never_runs(self, monkeypatch):
        real_iter = runtime_mod.iter_results
        release = threading.Event()

        def gated(spec, **kwargs):
            inner = real_iter(spec, **kwargs)

            def gen():
                try:
                    assert release.wait(timeout=30)
                    yield from inner
                finally:
                    inner.close()

            return gen()

        monkeypatch.setattr(runtime_mod, "iter_results", gated)
        with DiagnosticsServer(ServeSpec(dispatchers=1)) as server:
            client = ServiceClient(server.port)
            first = client.submit(small_fleet(cells=1, seed=91))["id"]
            wait_for(lambda: client.status(first)["status"] == "running",
                     what="dispatcher to pick up the first run")
            queued = client.submit(small_fleet(cells=1, seed=92))["id"]
            assert client.status(queued)["status"] == "queued"
            assert client.cancel(queued)["status"] == "cancelled"
            assert client.status(queued)["n_records"] == 0
            release.set()
            wait_for(lambda: client.status(first)["status"] == "done",
                     what="the unrelated run to finish")

    def test_rate_limit_is_429_rate_limit_error(self):
        spec = ServeSpec(rate_capacity=2.0, rate_refill_per_s=0.001)
        with DiagnosticsServer(spec) as server:
            greedy = ServiceClient(server.port, api_key="greedy")
            fleet = small_fleet(cells=1, seed=93)
            greedy.submit(fleet)
            greedy.submit(fleet)
            with pytest.raises(RateLimitError) as err:
                greedy.submit(fleet)
            assert err.value.retry_after_s > 0
            # Another key has its own bucket, and the rejection is
            # metered against the offender only.
            ServiceClient(server.port, api_key="patient").submit(fleet)
            usage = greedy.stats()["usage"]
            assert usage["greedy"]["rejected"] == 1
            assert usage["patient"]["rejected"] == 0

    def test_malformed_spec_is_400_spec_error(self, server):
        client = ServiceClient(server.port)
        with pytest.raises(SpecError):
            client.submit({"kind": "definitely-not-a-kind"})
        # A parse failure never reaches the registry or the queue.
        assert client.stats()["jobs"] == {}

    def test_non_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("POST", "/v1/runs", body=b"not json at all")
            resp = conn.getresponse()
            payload = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 400
        assert payload["error_type"] == "SpecError"

    def test_unknown_run_is_404_service_error(self, server):
        client = ServiceClient(server.port)
        with pytest.raises(ServiceError, match="run-999999"):
            client.status("run-999999")
        with pytest.raises(ServiceError, match="run-999999"):
            client.cancel("run-999999")

    def test_execution_failure_is_500_execution_error(self, monkeypatch):
        def exploding(spec, **kwargs):
            raise ExecutionError("worker pool detonated")

        monkeypatch.setattr(runtime_mod, "iter_results", exploding)
        with DiagnosticsServer(ServeSpec(dispatchers=1)) as server:
            client = ServiceClient(server.port)
            # The blocking path re-raises the server's recorded error
            # class — symmetric with inline execution.
            with pytest.raises(ExecutionError, match="detonated"):
                client.submit(small_fleet(cells=1, seed=94), wait=True)
            # The async path records the same failure; the stream's end
            # line carries it and the client re-raises from there too.
            job_id = client.submit(small_fleet(cells=1, seed=95))["id"]
            with pytest.raises(ExecutionError, match="detonated"):
                client.records(job_id)
            status = client.status(job_id)
            assert status["status"] == "failed"
            assert status["error_type"] == "ExecutionError"
