"""Noise models, reduction strategies, and the acquisition chain."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.electronics.adc import ADC
from repro.electronics.chain import AcquisitionChain
from repro.electronics.mux import Multiplexer
from repro.electronics.noise import (
    CdsStrategy,
    ChoppingStrategy,
    NoiseModel,
    NoStrategy,
    flicker_noise_series,
)
from repro.electronics.potentiostat import Potentiostat
from repro.electronics.tia import TransimpedanceAmplifier
from repro.errors import ElectronicsError


class TestFlickerSynthesis:
    def test_zero_density_is_silent(self, rng):
        out = flicker_noise_series(rng, 256, 10.0, 0.0)
        assert np.all(out == 0.0)

    def test_rms_matches_band_integral(self, rng):
        density = 1e-9
        n, fs = 4096, 10.0
        series = flicker_noise_series(rng, n, fs, density)
        freqs = np.fft.rfftfreq(n, 1.0 / fs)
        band = freqs[freqs > 0.0]
        target_var = np.sum(density ** 2 / band) * (fs / n)
        assert np.var(series) == pytest.approx(target_var, rel=1e-6)

    def test_spectrum_falls_with_frequency(self, rng):
        # Average many realisations; low-frequency PSD must exceed high.
        n, fs = 2048, 10.0
        psd = np.zeros(n // 2 + 1)
        for _ in range(20):
            s = flicker_noise_series(rng, n, fs, 1e-9)
            psd += np.abs(np.fft.rfft(s)) ** 2
        low = psd[1:20].mean()
        high = psd[-200:].mean()
        assert low > 10.0 * high


class TestNoiseModel:
    def test_rms_in_band_white_only(self):
        model = NoiseModel(white_density=1e-12, flicker_corner=0.0)
        assert model.rms_in_band(1.0, 101.0) == pytest.approx(1e-11)

    def test_flicker_adds_log_term(self):
        white = NoiseModel(white_density=1e-12, flicker_corner=0.0)
        pink = NoiseModel(white_density=1e-12, flicker_corner=10.0)
        assert pink.rms_in_band(0.01, 10.0) > white.rms_in_band(0.01, 10.0)

    def test_sample_std_scales_with_density(self, rng):
        quiet = NoiseModel(white_density=1e-12, flicker_corner=0.0)
        loud = NoiseModel(white_density=1e-10, flicker_corner=0.0)
        sq = np.std(quiet.sample(rng, 2000, 10.0))
        sl = np.std(loud.sample(rng, 2000, 10.0))
        assert sl / sq == pytest.approx(100.0, rel=0.2)

    def test_drift_is_a_ramp(self, rng):
        model = NoiseModel(white_density=0.0, flicker_corner=0.0,
                           drift_rate=1e-9)
        series = model.sample(rng, 100, 10.0)
        assert series[-1] == pytest.approx(1e-9 * 9.9, rel=1e-6)


class TestStrategies:
    def test_no_strategy_identity(self):
        model = NoiseModel(white_density=1e-12, flicker_corner=10.0,
                           drift_rate=1e-10)
        assert NoStrategy().effective_noise(model) == model

    def test_chopping_shrinks_corner_and_kills_drift(self):
        model = NoiseModel(white_density=1e-12, flicker_corner=10.0,
                           drift_rate=1e-10)
        out = ChoppingStrategy(chop_frequency=1e3).effective_noise(model)
        assert out.flicker_corner == pytest.approx(0.1)
        assert out.drift_rate == 0.0
        assert out.white_density == model.white_density

    def test_chopping_below_corner_rejected(self):
        model = NoiseModel(white_density=1e-12, flicker_corner=10.0)
        with pytest.raises(ElectronicsError, match="above"):
            ChoppingStrategy(chop_frequency=5.0).effective_noise(model)

    def test_cds_white_penalty_and_flicker_cancellation(self):
        model = NoiseModel(white_density=1e-12, flicker_corner=10.0,
                           drift_rate=1e-10)
        out = CdsStrategy(correlation=0.9).effective_noise(model)
        assert out.white_density == pytest.approx(1e-12 * math.sqrt(2.0))
        assert out.drift_rate == 0.0
        # Residual flicker well below the raw corner.
        assert out.flicker_corner < model.flicker_corner

    def test_strategies_reduce_low_frequency_rms(self):
        model = NoiseModel(white_density=1e-12, flicker_corner=50.0)
        raw = model.rms_in_band(0.01, 5.0)
        chopped = ChoppingStrategy().effective_noise(model).rms_in_band(
            0.01, 5.0)
        cds = CdsStrategy().effective_noise(model).rms_in_band(0.01, 5.0)
        assert chopped < raw
        assert cds < raw

    def test_cds_needs_blank_electrode_flag(self):
        assert CdsStrategy().needs_blank_electrode
        assert not ChoppingStrategy().needs_blank_electrode


class TestAcquisitionChain:
    def _chain(self, **kwargs):
        return AcquisitionChain(
            potentiostat=Potentiostat(),
            tia=TransimpedanceAmplifier.for_range(10e-6),
            adc=ADC.for_readout(10e-6, 10e-9), **kwargs)

    def test_digitize_recovers_constant_current(self, rng):
        chain = self._chain()
        times = np.arange(200) / 10.0
        currents = np.full(200, 2.0e-6)
        reading = chain.digitize(times, currents, rng=rng)
        assert np.mean(reading.current_estimate) == pytest.approx(
            2.0e-6, rel=0.02)
        assert not reading.any_saturated

    def test_saturation_flagged(self, rng):
        chain = self._chain()
        times = np.arange(20) / 10.0
        currents = np.full(20, 50e-6)  # beyond the 10 uA class
        reading = chain.digitize(times, currents, rng=rng)
        assert reading.any_saturated

    def test_measure_constant_reports_noise(self, rng):
        chain = self._chain()
        mean, std = chain.measure_constant(1e-6, duration=5.0, rng=rng)
        assert mean == pytest.approx(1e-6, rel=0.05)
        assert std > 0.0

    def test_nonuniform_times_rejected(self, rng):
        chain = self._chain()
        times = np.array([0.0, 0.1, 0.3])
        with pytest.raises(ElectronicsError, match="uniform"):
            chain.digitize(times, np.zeros(3), rng=rng)

    def test_mux_schedule_needs_mux(self, rng):
        chain = self._chain()
        mux = Multiplexer()
        schedule = mux.round_robin(["a"], dwell=1.0)
        times = np.arange(10) / 10.0
        with pytest.raises(ElectronicsError, match="no mux"):
            chain.digitize(times, np.zeros(10), schedule=schedule, rng=rng)

    def test_mux_settling_attenuates_early_samples(self, rng):
        mux = Multiplexer(settling_time=0.2, charge_injection=0.0)
        chain = self._chain(mux=mux)
        schedule = mux.round_robin(["a"], dwell=10.0)
        times = np.arange(100) / 10.0
        currents = np.full(100, 5e-6)
        reading = chain.digitize(times, currents, schedule=schedule, rng=rng)
        # Early samples slew; late samples sit at the true value.
        assert abs(reading.current_estimate[1]) < 3.0e-6
        assert np.mean(reading.current_estimate[-20:]) == pytest.approx(
            5e-6, rel=0.05)

    def test_quantization_noise_floor(self):
        chain = self._chain()
        assert chain.quantization_noise_rms() > 0.0
        assert chain.effective_input_noise() >= chain.quantization_noise_rms()

    def test_noise_strategy_improves_effective_noise(self):
        raw = self._chain()
        chopped = AcquisitionChain(
            potentiostat=Potentiostat(),
            tia=TransimpedanceAmplifier.for_range(10e-6),
            adc=ADC.for_readout(10e-6, 10e-9),
            noise_strategy=ChoppingStrategy())
        assert chopped.noise_rms() < raw.noise_rms()

    def test_budgets_positive(self):
        chain = self._chain(mux=Multiplexer())
        assert chain.total_power() > 0.0
        assert chain.total_area_mm2() > 0.0

    def test_describe_mentions_blocks(self):
        chain = self._chain()
        text = chain.describe()
        assert "potentiostat" in text
        assert "TIA" in text
        assert "ADC" in text
