"""End-to-end integration scenarios across every layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_calibration
from repro.core import (
    BiosensingPlatform,
    PanelSpec,
    TargetSpec,
    design_from_choices,
    explore,
    load_design,
    probe_options,
    save_design,
)
from repro.chem import InjectionSchedule
from repro.data import (
    PAPER_PANEL_MID_CONCENTRATIONS,
    bench_chain,
    integrated_chain,
    paper_panel_cell,
    reference_cell,
)
from repro.measurement import Chronoamperometry, PanelProtocol
from repro.sensors.electrode import PAPER_ELECTRODE_AREA


class TestCalibrationThenDeployment:
    """Calibrate a sensor, then use it as a deployed instrument."""

    def test_concentration_readback_within_tolerance(self):
        cell = reference_cell("lactate")
        chain = bench_chain(seed=71)
        we = cell.working_electrodes[0]

        def signal_at(c: float) -> tuple[float, float]:
            cell.chamber.set_bulk("lactate", c)
            true = cell.measured_current(we.name, 0.650)
            return chain.measure_constant(true, duration=4.0, we=we)

        curve = run_calibration(signal_at, list(np.linspace(0.5, 2.5, 6)))
        for truth in (0.8, 1.4, 2.2):
            cell.chamber.set_bulk("lactate", truth)
            mean, _ = chain.measure_constant(
                cell.measured_current(we.name, 0.650), duration=4.0, we=we)
            estimate = curve.concentration_from_signal(mean)
            # Within 10 % across the linear range, through the noisy chain.
            assert estimate == pytest.approx(truth, rel=0.10), truth


class TestDseToRunningPlatform:
    """The full paper loop: requirements -> DSE -> hardware -> sample."""

    def test_explore_materialise_measure(self):
        panel = PanelSpec(
            name="integration",
            targets=(TargetSpec("glucose", 0.5, 4.0),
                     TargetSpec("cholesterol", 0.01, 0.08)))
        result = explore(panel, require_feasible=True)
        chosen = result.best_by("cost")
        platform = BiosensingPlatform(chosen.design, ca_dwell=40.0, seed=72)
        platform.load_sample({"glucose": 2.0, "cholesterol": 0.04})
        run = platform.run_panel(rng=np.random.default_rng(72))
        assert "glucose" in run.readouts
        assert "cholesterol" in run.readouts
        assert run.readouts["glucose"].signal > 0.0

    def test_design_survives_serialisation_and_still_runs(self, tmp_path):
        panel = PanelSpec(
            name="roundtrip",
            targets=(TargetSpec("glutamate", 0.5, 2.0),))
        choices = {"glutamate": probe_options("glutamate")[0]}
        design = design_from_choices(
            panel, choices, structure="shared_chamber",
            readout="mux_shared", noise="chopping",
            nanostructure="carbon_nanotubes",
            we_area=PAPER_ELECTRODE_AREA, scan_rate=0.02)
        path = save_design(design, tmp_path / "d.json")
        loaded = load_design(path)
        platform = BiosensingPlatform(loaded, ca_dwell=30.0, seed=73)
        platform.load_sample({"glutamate": 1.0})
        run = platform.run_panel(rng=np.random.default_rng(73))
        assert run.signal_for("glutamate") > 0.0


class TestInjectionToPanelConsistency:
    """Injections and preloaded chambers must agree at steady state."""

    def test_staircase_endpoint_matches_preloaded(self, glucose_cell):
        glucose_cell.chamber.set_bulk("glucose", 0.0)
        schedule = InjectionSchedule.staircase("glucose", step=0.5,
                                               n_steps=4, interval=40.0,
                                               start=10.0)
        protocol = Chronoamperometry(e_setpoint=0.55, duration=220.0,
                                     sample_rate=4.0, injections=schedule)
        times, currents = protocol.simulate_true_current(glucose_cell, "WE1")
        glucose_cell.chamber.set_bulk("glucose", 2.0)
        steady = glucose_cell.measured_current("WE1", 0.55)
        assert currents[-1] == pytest.approx(steady, rel=0.03)
        # Each step rises monotonically: currents right before each
        # injection form an increasing sequence.
        pre_injection = [currents[np.searchsorted(times, t) - 2]
                         for t in (50.0, 90.0, 130.0, 210.0)]
        assert all(b > a for a, b in zip(pre_injection, pre_injection[1:]))


class TestSeededReproducibility:
    """Identical seeds must give bit-identical measurements."""

    def test_panel_runs_identical(self):
        results = []
        for _ in range(2):
            cell = paper_panel_cell()
            chain = integrated_chain("cyp_micro", n_channels=5, seed=99)
            run = PanelProtocol(ca_dwell=30.0).run(
                cell, chain, rng=np.random.default_rng(99))
            results.append({t: r.signal for t, r in run.readouts.items()})
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        signals = []
        for seed in (1, 2):
            cell = reference_cell("glucose")
            cell.chamber.set_bulk("glucose", 2.0)
            chain = bench_chain(seed=seed)
            we = cell.working_electrodes[0]
            mean, _ = chain.measure_constant(
                cell.measured_current(we.name, 0.55), duration=3.0, we=we,
                rng=np.random.default_rng(seed))
            signals.append(mean)
        assert signals[0] != signals[1]


class TestSharedVersusChamberedPhysics:
    """The structural choice has observable chemical consequences."""

    def test_shared_chamber_mixes_chambered_isolates(self):
        panel = PanelSpec(
            name="structures",
            targets=(TargetSpec("glucose", 0.5, 4.0),
                     TargetSpec("lactate", 0.5, 2.5)))
        choices = {t: probe_options(t)[0] for t in panel.species_names()}
        for structure, distinct_chambers in (("shared_chamber", 1),
                                             ("chambered_array", 2)):
            design = design_from_choices(
                panel, choices, structure=structure, readout="mux_shared",
                noise="raw", nanostructure=None,
                we_area=PAPER_ELECTRODE_AREA, scan_rate=0.02)
            platform = BiosensingPlatform(design, seed=74)
            chambers = {id(c.chamber) for c in platform.cells.values()}
            assert len(chambers) == distinct_chambers
