"""Explorer, materialised platforms, JSON specs, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import design_from_choices
from repro.core.explorer import explore
from repro.core.library import probe_options
from repro.core.platform import BiosensingPlatform
from repro.core.report import design_point_report, exploration_report
from repro.core.spec import (
    design_from_dict,
    design_to_dict,
    load_design,
    load_panel,
    panel_from_dict,
    panel_to_dict,
    save_design,
    save_panel,
)
from repro.core.targets import PanelSpec, TargetSpec, paper_panel_spec
from repro.errors import InfeasibleDesignError, SpecError
from repro.sensors.electrode import PAPER_ELECTRODE_AREA


@pytest.fixture(scope="module")
def small_panel():
    """A two-target panel keeping exploration fast in tests."""
    return PanelSpec(
        name="mini",
        targets=(TargetSpec("glucose", 0.5, 4.0, required_lod=0.9),
                 TargetSpec("lactate", 0.5, 2.5, required_lod=0.6)))


@pytest.fixture(scope="module")
def mini_result(small_panel):
    return explore(small_panel)


class TestExplorer:
    def test_enumerates_full_cross_product(self, mini_result):
        # 2 structures x 2 readouts x 3 noise x 2 nano x 3 areas x 2 rates.
        assert mini_result.n_candidates == 144

    def test_some_feasible(self, mini_result):
        assert 0 < mini_result.n_feasible <= mini_result.n_candidates

    def test_front_subset_of_feasible(self, mini_result):
        feasible = {p.design.name for p in mini_result.points if p.feasible}
        for point in mini_result.front:
            assert point.design.name in feasible

    def test_front_not_dominated(self, mini_result):
        from repro.core.pareto import dominates
        objectives = [p.objectives() for p in mini_result.front]
        for i, a in enumerate(objectives):
            for j, b in enumerate(objectives):
                if i != j:
                    assert not dominates(b, a)

    def test_best_by_objective(self, mini_result):
        cheapest = mini_result.best_by("cost")
        fastest = mini_result.best_by("time")
        assert cheapest.cost.fabrication_cost <= fastest.cost.fabrication_cost
        assert fastest.cost.assay_time_s <= cheapest.cost.assay_time_s
        with pytest.raises(InfeasibleDesignError):
            mini_result.best_by("beauty")

    def test_infeasible_panel_raises_with_summary(self):
        impossible = PanelSpec(
            name="impossible",
            targets=(TargetSpec("glucose", 0.5, 4.0, required_lod=1e-9),))
        with pytest.raises(InfeasibleDesignError):
            explore(impossible, require_feasible=True)

    def test_paper_panel_pareto_shows_sharing_tradeoff(self):
        result = explore(paper_panel_spec())
        assert result.n_feasible > 0
        readouts = {p.design.readout for p in result.front}
        # Both sharing styles appear on the front: mux wins power/cost,
        # per-WE wins assay time — the paper's Sec. II-A trade-off.
        assert "mux_shared" in readouts
        assert "per_we" in readouts


class TestPlatform:
    def _design(self, small_panel, **overrides):
        choices = {t: probe_options(t)[0]
                   for t in small_panel.species_names()}
        kwargs = dict(structure="shared_chamber", readout="mux_shared",
                      noise="raw", nanostructure="carbon_nanotubes",
                      we_area=PAPER_ELECTRODE_AREA, scan_rate=0.02)
        kwargs.update(overrides)
        return design_from_choices(small_panel, choices, **kwargs)

    def test_materialise_and_run(self, small_panel):
        design = self._design(small_panel)
        platform = BiosensingPlatform(design, ca_dwell=40.0)
        platform.load_sample({"glucose": 2.0, "lactate": 1.0})
        result = platform.run_panel(rng=np.random.default_rng(3))
        assert set(result.readouts) == {"glucose", "lactate"}
        assert result.readouts["glucose"].signal > 0.0
        assert result.assay_time > 0.0

    def test_chambered_array_isolates_samples(self, small_panel):
        design = self._design(small_panel, structure="chambered_array")
        platform = BiosensingPlatform(design, ca_dwell=40.0)
        assert len({id(c.chamber) for c in platform.cells.values()}) == 2

    def test_cds_blank_subtraction(self, small_panel):
        design = self._design(small_panel, noise="cds")
        platform = BiosensingPlatform(design, ca_dwell=40.0)
        platform.load_sample({"glucose": 2.0, "lactate": 1.0})
        result = platform.run_panel(rng=np.random.default_rng(3))
        assert result.blank_current is not None

    def test_summary_mentions_layout(self, small_panel):
        design = self._design(small_panel)
        platform = BiosensingPlatform(design)
        text = platform.summary()
        assert "WE1" in text
        assert "shared_chamber" in text


class TestSpecs:
    def test_panel_round_trip(self, tmp_path):
        panel = paper_panel_spec()
        path = save_panel(panel, tmp_path / "panel.json")
        loaded = load_panel(path)
        assert loaded == panel

    def test_design_round_trip(self, tmp_path, small_panel):
        choices = {t: probe_options(t)[0]
                   for t in small_panel.species_names()}
        design = design_from_choices(
            small_panel, choices, structure="shared_chamber",
            readout="mux_shared", noise="cds", nanostructure=None,
            we_area=PAPER_ELECTRODE_AREA, scan_rate=0.02)
        path = save_design(design, tmp_path / "design.json")
        loaded = load_design(path)
        assert loaded == design

    def test_wrong_kind_rejected(self):
        panel = paper_panel_spec()
        payload = panel_to_dict(panel)
        with pytest.raises(SpecError, match="design"):
            design_from_dict(payload)

    def test_bad_schema_version(self):
        payload = panel_to_dict(paper_panel_spec())
        payload["schema"] = 99
        with pytest.raises(SpecError, match="schema"):
            panel_from_dict(payload)

    def test_malformed_panel(self):
        with pytest.raises(SpecError):
            panel_from_dict({"kind": "panel", "schema": 1, "name": "x"})

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(SpecError):
            load_panel(tmp_path / "missing.json")


class TestReports:
    def test_exploration_report_renders(self, mini_result):
        text = exploration_report(mini_result)
        assert "candidates evaluated" in text
        assert "Pareto" in text

    def test_design_point_report_renders(self, mini_result):
        point = mini_result.front[0]
        text = design_point_report(point)
        assert point.design.name in text
        assert "per-target estimates" in text
        assert "feasible: yes" in text

    def test_violations_listed(self, mini_result):
        infeasible = [p for p in mini_result.points if not p.feasible]
        if infeasible:
            text = design_point_report(infeasible[0])
            assert "VIOLATIONS" in text
