"""Closed-form electrochemistry: Cottrell, Randles-Sevcik, microelectrodes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chem import constants as C
from repro.chem.analytic import (
    cottrell_charge,
    cottrell_current,
    diffusion_limited_current,
    mass_transfer_coefficient,
    microdisk_response_time,
    microdisk_steady_state_current,
    planar_response_time,
    randles_sevcik_peak_current,
    reversible_half_peak_width,
    reversible_peak_potential,
)
from repro.errors import ChemistryError

areas = st.floats(min_value=1e-8, max_value=1e-4)
concs = st.floats(min_value=1e-3, max_value=10.0)
diffs = st.floats(min_value=1e-10, max_value=2e-9)
rates = st.floats(min_value=1e-3, max_value=0.1)


class TestCottrell:
    def test_magnitude(self):
        # 1 cm^2, 1 mM, D=1e-9, t=1 s: i = F*C*sqrt(D/pi) * A.
        i = cottrell_current(1, 1e-4, 1.0, 1e-9, 1.0)
        expected = C.FARADAY * 1e-4 * 1.0 * math.sqrt(1e-9 / math.pi)
        assert i == pytest.approx(expected)

    @given(areas, concs, diffs)
    def test_inverse_sqrt_time_decay(self, a, c, d):
        i1 = cottrell_current(1, a, c, d, 1.0)
        i4 = cottrell_current(1, a, c, d, 4.0)
        assert i1 / i4 == pytest.approx(2.0, rel=1e-9)

    @given(areas, concs, diffs, st.floats(min_value=0.1, max_value=100.0))
    def test_charge_is_integral_of_current(self, a, c, d, t):
        # dQ/dt == i(t): check with a centered finite difference.
        dt = t * 1e-4
        dq = (cottrell_charge(1, a, c, d, t + dt)
              - cottrell_charge(1, a, c, d, t - dt)) / (2 * dt)
        assert dq == pytest.approx(cottrell_current(1, a, c, d, t), rel=1e-6)


class TestRandlesSevcik:
    @given(areas, concs, diffs, rates)
    def test_linear_in_concentration(self, a, c, d, v):
        i1 = randles_sevcik_peak_current(2, a, c, d, v)
        i2 = randles_sevcik_peak_current(2, a, 2 * c, d, v)
        assert i2 / i1 == pytest.approx(2.0, rel=1e-9)

    @given(areas, concs, diffs, rates)
    def test_sqrt_in_scan_rate(self, a, c, d, v):
        i1 = randles_sevcik_peak_current(2, a, c, d, v)
        i4 = randles_sevcik_peak_current(2, a, c, d, 4 * v)
        assert i4 / i1 == pytest.approx(2.0, rel=1e-9)

    def test_n_exponent_three_halves(self):
        i1 = randles_sevcik_peak_current(1, 1e-6, 1.0, 1e-9, 0.02)
        i2 = randles_sevcik_peak_current(2, 1e-6, 1.0, 1e-9, 0.02)
        assert i2 / i1 == pytest.approx(2.0 ** 1.5, rel=1e-9)


class TestPeakGeometry:
    def test_cathodic_peak_below_formal(self):
        ep = reversible_peak_potential(-0.250, 2, cathodic=True)
        assert ep < -0.250
        assert -0.250 - ep == pytest.approx(1.109 / (2 * C.F_OVER_RT))

    def test_anodic_peak_above_formal(self):
        ep = reversible_peak_potential(-0.250, 2, cathodic=False)
        assert ep > -0.250

    def test_half_width_halves_with_n(self):
        w1 = reversible_half_peak_width(1)
        w2 = reversible_half_peak_width(2)
        assert w1 / w2 == pytest.approx(2.0)
        assert w1 == pytest.approx(0.0565, abs=2e-3)  # ~56.5 mV at 25 C


class TestMicroelectrode:
    @given(st.floats(min_value=1e-6, max_value=1e-3), concs, diffs)
    def test_steady_current_linear_in_radius(self, r, c, d):
        i1 = microdisk_steady_state_current(1, r, c, d)
        i2 = microdisk_steady_state_current(1, 2 * r, c, d)
        assert i2 / i1 == pytest.approx(2.0, rel=1e-9)

    def test_response_time_quadratic_in_radius(self):
        # Halving the electrode radius quarters the settling time — the
        # paper's microelectrode argument (Sec. III).
        t1 = microdisk_response_time(1e-4, 6.7e-10)
        t2 = microdisk_response_time(5e-5, 6.7e-10)
        assert t1 / t2 == pytest.approx(4.0, rel=1e-9)

    def test_planar_response_time_glucose_strip(self):
        # The Fig. 3 calibration: 150 um layer, glucose D -> t90 ~ 29 s.
        t90 = planar_response_time(1.5e-4, 6.7e-10)
        assert 25.0 <= t90 <= 33.0

    def test_planar_time_grows_with_settle_fraction(self):
        t90 = planar_response_time(1.5e-4, 6.7e-10, settle_fraction=0.90)
        t99 = planar_response_time(1.5e-4, 6.7e-10, settle_fraction=0.99)
        assert t99 > t90


class TestTransportLimits:
    @given(areas, concs, diffs)
    def test_diffusion_limited_current_formula(self, a, c, d):
        delta = 1.5e-4
        i = diffusion_limited_current(2, a, c, d, delta)
        m = mass_transfer_coefficient(d, delta)
        assert i == pytest.approx(2 * C.FARADAY * a * m * c, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ChemistryError):
            cottrell_current(0, 1e-6, 1.0, 1e-9, 1.0)
        with pytest.raises(Exception):
            randles_sevcik_peak_current(1, -1e-6, 1.0, 1e-9, 0.02)
