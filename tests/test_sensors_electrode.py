"""Electrodes and functionalized working electrodes."""

from __future__ import annotations

import math

import pytest

from repro.chem.solution import Chamber
from repro.sensors.electrode import (
    PAPER_ELECTRODE_AREA,
    Electrode,
    ElectrodeRole,
    WorkingElectrode,
)
from repro.sensors.functionalization import (
    CARBON_NANOTUBES,
    POLYMER_PERMSELECTIVE,
    with_cytochrome,
    with_oxidase,
)
from repro.sensors.materials import get_material
from repro.errors import SensorError


def gold_we(area=PAPER_ELECTRODE_AREA, functionalization=None, **kwargs):
    electrode = Electrode(name="WE", role=ElectrodeRole.WORKING,
                          material=get_material("gold"), area=area)
    if functionalization is None:
        return WorkingElectrode(electrode=electrode, **kwargs)
    return WorkingElectrode(electrode=electrode,
                            functionalization=functionalization, **kwargs)


class TestElectrode:
    def test_paper_area_constant(self):
        assert PAPER_ELECTRODE_AREA == pytest.approx(0.23e-6)

    def test_material_by_name(self):
        e = Electrode(name="WE", role=ElectrodeRole.WORKING,
                      material="gold")
        assert e.material.name == "gold"

    def test_reference_needs_suitable_material(self):
        with pytest.raises(SensorError, match="reference"):
            Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                      material=get_material("gold"))
        Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                  material=get_material("silver"))  # fine

    def test_charging_current_scales_with_area(self):
        # The paper's microelectrode argument: background ~ area.
        small = Electrode(name="a", role=ElectrodeRole.WORKING,
                          material="gold", area=0.1e-6)
        large = small.with_area(1.0e-6)
        ratio = large.charging_current(0.02) / small.charging_current(0.02)
        assert ratio == pytest.approx(10.0)

    def test_charging_current_sign_follows_sweep(self):
        e = Electrode(name="a", role=ElectrodeRole.WORKING, material="gold")
        assert e.charging_current(0.02) > 0.0
        assert e.charging_current(-0.02) < 0.0

    def test_equivalent_radius(self):
        e = Electrode(name="a", role=ElectrodeRole.WORKING,
                      material="gold", area=math.pi * 1e-8)
        assert e.equivalent_radius == pytest.approx(1e-4)


class TestWorkingElectrode:
    def test_role_enforced(self):
        ce = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                       material="gold")
        with pytest.raises(SensorError, match="expected WE"):
            WorkingElectrode(electrode=ce)

    def test_effective_layer_interpolates(self):
        # Large electrode -> planar layer; small -> disk-limited (thinner).
        big = gold_we(area=1e-3)
        small = gold_we(area=1e-9)
        assert big.effective_nernst_layer() == pytest.approx(
            big.nernst_layer, rel=0.05)
        assert small.effective_nernst_layer() < 0.2 * big.nernst_layer

    def test_smaller_electrode_responds_faster(self):
        # Quantitative form of the Sec. III scaling claim.
        big = gold_we(area=7e-6)
        small = gold_we(area=0.05e-6)
        assert small.response_time("glucose") < big.response_time("glucose")

    def test_membrane_slows_transport(self, glucose_oxidase):
        bare = gold_we(functionalization=with_oxidase(glucose_oxidase))
        coated = gold_we(functionalization=with_oxidase(
            glucose_oxidase, membrane=POLYMER_PERMSELECTIVE))
        assert (coated.mass_transfer_coefficient("glucose")
                < bare.mass_transfer_coefficient("glucose"))

    def test_effective_film_applies_gain(self, glucose_oxidase):
        bare = gold_we(functionalization=with_oxidase(glucose_oxidase))
        nano = gold_we(functionalization=with_oxidase(
            glucose_oxidase, nanostructure=CARBON_NANOTUBES))
        gain = CARBON_NANOTUBES.signal_gain
        assert nano.effective_film().vmax == pytest.approx(
            bare.effective_film().vmax * gain)

    def test_effective_wave_shifts_with_material_and_nano(self, glucose_oxidase):
        nano = gold_we(functionalization=with_oxidase(
            glucose_oxidase, nanostructure=CARBON_NANOTUBES))
        expected = (glucose_oxidase.h2o2_wave.e_half
                    + get_material("gold").h2o2_wave_shift
                    + CARBON_NANOTUBES.h2o2_wave_shift)
        assert nano.effective_h2o2_wave().e_half == pytest.approx(expected)

    def test_oxidase_methods_require_oxidase(self, cyp2b4_probe):
        we = gold_we(functionalization=with_cytochrome(cyp2b4_probe))
        with pytest.raises(SensorError):
            we.effective_film()
        with pytest.raises(SensorError):
            we.effective_h2o2_wave()

    def test_effective_k0_requires_cytochrome(self, glucose_oxidase):
        we = gold_we(functionalization=with_oxidase(glucose_oxidase))
        with pytest.raises(SensorError):
            we.effective_k0("benzphetamine")


class TestSteadyStateCurrent:
    def test_oxidase_current_rises_with_concentration(self, glucose_oxidase):
        we = gold_we(functionalization=with_oxidase(glucose_oxidase))
        chamber = Chamber()
        chamber.set_bulk("glucose", 1.0)
        i1 = we.steady_state_current(0.55, chamber)
        chamber.set_bulk("glucose", 2.0)
        i2 = we.steady_state_current(0.55, chamber)
        assert i2 > i1 > 0.0

    def test_no_analyte_only_leakage(self, glucose_oxidase):
        we = gold_we(functionalization=with_oxidase(glucose_oxidase))
        chamber = Chamber()
        assert we.steady_state_current(0.55, chamber) == pytest.approx(
            we.electrode.leakage_current())

    def test_below_wave_no_signal(self, glucose_oxidase):
        we = gold_we(functionalization=with_oxidase(glucose_oxidase))
        chamber = Chamber()
        chamber.set_bulk("glucose", 2.0)
        low = we.steady_state_current(0.0, chamber)
        high = we.steady_state_current(0.55, chamber)
        assert low < 0.05 * high

    def test_cyp_reduction_is_negative(self, cyp2b4_probe):
        we = gold_we(functionalization=with_cytochrome(cyp2b4_probe))
        chamber = Chamber()
        chamber.set_bulk("benzphetamine", 1.0)
        i = we.steady_state_current(-0.6, chamber)
        assert i < 0.0

    def test_blank_sees_direct_oxidizers(self):
        # The paper's CDS caveat: dopamine lights up an enzyme-free WE.
        we = gold_we()
        chamber = Chamber()
        chamber.set_bulk("dopamine", 0.5)
        i = we.steady_state_current(0.55, chamber)
        assert i > 2.0 * we.electrode.leakage_current()

    def test_blank_ignores_enzyme_substrates(self):
        we = gold_we()
        chamber = Chamber()
        chamber.set_bulk("glucose", 5.0)
        assert we.steady_state_current(0.55, chamber) == pytest.approx(
            we.electrode.leakage_current())
