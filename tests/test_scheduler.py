"""Cross-electrode panel batching and the multi-assay fleet scheduler.

The acceptance bar of PR 2: the fused paths — all chronoamperometric
dwells of a cell in one engine solve (`PanelProtocol`), and all dwells
of many cells fused across jobs (`AssayScheduler`) — must reproduce the
sequential per-WE reference path *bit for bit*, because chemistry
consumes no randomness and digitisation draws per WE in the original
electrode order.  These tests pin that equivalence on cells mixing
oxidase, CYP and blank electrodes, with mid-dwell injection schedules
and permuted electrode orders, plus the quick (smoke) mode of the
throughput bench so a perf/correctness regression in the batched path
fails tier-1 fast.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.chem.solution import InjectionSchedule
from repro.data import bench_chain
from repro.electronics.waveform import uniform_sample_times
from repro.engine import AssayJob, AssayScheduler, DwellBatch
from repro.errors import ProtocolError, SimulationError
from repro.measurement.chronoamperometry import Chronoamperometry
from repro.measurement.panel import PanelProtocol
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import (
    blank,
    with_cytochrome,
    with_oxidase,
)
from repro.sensors.materials import get_material


def _we(name, functionalization, material="screen_printed_carbon",
        area=7.0e-6):
    return WorkingElectrode(
        electrode=Electrode(name=name, role=ElectrodeRole.WORKING,
                            material=get_material(material), area=area),
        functionalization=functionalization)


@pytest.fixture
def mixed_cell(glucose_oxidase, cyp2b4_probe, cell_factory):
    """Oxidase + CYP + blank WEs behind one chamber, dopamine loaded.

    Dopamine oxidises directly on any electrode, so even the blank dwell
    carries chemistry — the CDS-breaking case the panel must batch.
    """
    def build(order=("ox", "cyp", "blank")):
        wes = {"ox": _we("WE_ox", with_oxidase(glucose_oxidase)),
               "cyp": _we("WE_cyp", with_cytochrome(cyp2b4_probe),
                          material="rhodium_graphite"),
               "blank": _we("WE_blank", blank(), material="gold")}
        cell = cell_factory([wes[k] for k in order])
        cell.chamber.set_bulk("glucose", 2.0)
        cell.chamber.set_bulk("benzphetamine", 0.8)
        cell.chamber.set_bulk("aminopyrine", 2.0)
        cell.chamber.set_bulk("dopamine", 0.3)
        return cell

    return build


def assert_panel_results_equal(ref, got):
    """Bit-for-bit equality of two PanelResult records."""
    assert ref.traces.keys() == got.traces.keys()
    for name in ref.traces:
        assert np.array_equal(ref.traces[name].times, got.traces[name].times)
        assert np.array_equal(ref.traces[name].current,
                              got.traces[name].current)
        assert np.array_equal(ref.traces[name].true_current,
                              got.traces[name].true_current)
    assert ref.voltammograms.keys() == got.voltammograms.keys()
    for name in ref.voltammograms:
        assert np.array_equal(ref.voltammograms[name].current,
                              got.voltammograms[name].current)
    assert ref.readouts.keys() == got.readouts.keys()
    for target in ref.readouts:
        assert ref.readouts[target].signal == got.readouts[target].signal
        assert ref.readouts[target].e_applied == got.readouts[target].e_applied
    assert ref.assay_time == got.assay_time
    assert ref.blank_current == got.blank_current
    assert ref.blank_e_applied == got.blank_e_applied


def run_both_paths(cell, protocol_kwargs=None, seed=17):
    kwargs = dict(ca_dwell=20.0, sample_rate=5.0)
    kwargs.update(protocol_kwargs or {})
    sequential = PanelProtocol(batch_electrodes=False, **kwargs).run(
        cell, bench_chain(seed=1), rng=np.random.default_rng(seed))
    batched = PanelProtocol(batch_electrodes=True, **kwargs).run(
        cell, bench_chain(seed=1), rng=np.random.default_rng(seed))
    return sequential, batched


class TestBatchedPanelEquivalence:
    """Fused cross-electrode dwells vs the sequential reference path."""

    def test_mixed_cell_bit_identical(self, mixed_cell):
        sequential, batched = run_both_paths(mixed_cell())
        assert_panel_results_equal(sequential, batched)
        # The batched run really did fuse: blank + oxidase dwells exist.
        assert set(batched.traces) == {"WE_ox", "WE_blank"}
        assert "WE_cyp" in batched.voltammograms

    @pytest.mark.parametrize("order", [("blank", "cyp", "ox"),
                                       ("cyp", "ox", "blank")])
    def test_permuted_electrode_order(self, mixed_cell, order):
        sequential, batched = run_both_paths(mixed_cell(order))
        assert_panel_results_equal(sequential, batched)

    def test_mid_dwell_injections_bit_identical(self, mixed_cell):
        schedule = {
            "WE_ox": InjectionSchedule.staircase("glucose", 1.0, 2, 6.0,
                                                 start=4.0),
            "WE_blank": InjectionSchedule.single(8.0, "dopamine", 0.5),
        }
        sequential, batched = run_both_paths(
            mixed_cell(), {"ca_injections": schedule})
        assert_panel_results_equal(sequential, batched)
        # The staircase visibly moved the oxidase record.
        flat, _ = run_both_paths(mixed_cell())
        assert (sequential.traces["WE_ox"].true_current[-1]
                > flat.traces["WE_ox"].true_current[-1])

    def test_shared_schedule_applies_to_every_ca_we(self, mixed_cell):
        schedule = InjectionSchedule.single(5.0, "dopamine", 0.4)
        sequential, batched = run_both_paths(
            mixed_cell(), {"ca_injections": schedule})
        assert_panel_results_equal(sequential, batched)

    def test_injection_outside_dwell_rejected(self):
        with pytest.raises(ProtocolError, match="outside the record"):
            PanelProtocol(ca_dwell=10.0,
                          ca_injections=InjectionSchedule.single(
                              12.0, "glucose", 1.0))
        with pytest.raises(ProtocolError, match="outside the record"):
            PanelProtocol(ca_dwell=10.0, ca_injections={
                "WE_ox": InjectionSchedule.single(12.0, "glucose", 1.0)})

    def test_mapping_with_none_schedule_means_no_injections(self, mixed_cell):
        # None inside a mapping spells "no schedule for this WE".
        schedule = {"WE_ox": InjectionSchedule.single(5.0, "glucose", 1.0),
                    "WE_blank": None}
        sequential, batched = run_both_paths(
            mixed_cell(), {"ca_injections": schedule})
        assert_panel_results_equal(sequential, batched)

    def test_readout_surfaces_applied_potential(self, mixed_cell):
        _, batched = run_both_paths(mixed_cell())
        chain = bench_chain(seed=1)
        glucose = batched.readouts["glucose"]
        we = mixed_cell().working_electrode("WE_ox")
        e_set = we.effective_h2o2_wave().potential_for_efficiency(0.95)
        assert glucose.e_applied == pytest.approx(
            float(chain.potentiostat.applied_potential(e_set)))
        # Blank record: the generic H2O2 potential of Sec. I-B.
        assert batched.blank_e_applied == pytest.approx(
            float(chain.potentiostat.applied_potential(0.65)), abs=1e-12)
        # CV readouts sweep a program; no single applied potential.
        assert batched.readouts["benzphetamine"].e_applied is None


class TestDwellBatch:
    def test_fused_rows_match_standalone_dwells(self, mixed_cell):
        cell = mixed_cell()
        proto = Chronoamperometry(e_setpoint=0.55, duration=15.0,
                                  sample_rate=5.0)
        times = uniform_sample_times(proto.duration, proto.sample_rate)
        fused = DwellBatch(
            [proto.build_dwell(cell, "WE_ox"),
             proto.build_dwell(cell, "WE_blank")], times).simulate()
        for j, we_name in enumerate(["WE_ox", "WE_blank"]):
            _, alone = proto.simulate_true_current(cell, we_name)
            assert np.array_equal(fused[j], alone)

    def test_heterogeneous_grids_fuse(self, mixed_cell, glucose_oxidase,
                                      cell_factory):
        # A second oxidase WE with a different area -> different Nernst
        # layer -> different grid; the batch pads and stays exact.
        cell = mixed_cell()
        big = _we("WE_big", with_oxidase(glucose_oxidase), area=2.5e-5)
        cell2 = cell_factory([cell.working_electrode("WE_ox"), big])
        cell2.chamber.set_bulk("glucose", 2.0)
        proto = Chronoamperometry(e_setpoint=0.45, duration=10.0,
                                  sample_rate=5.0)
        times = uniform_sample_times(proto.duration, proto.sample_rate)
        dwells = [proto.build_dwell(cell2, name)
                  for name in ("WE_ox", "WE_big")]
        grids = {d.mechanisms["glucose"].solver.grid.x[1] for d in dwells}
        assert len(grids) == 2  # genuinely heterogeneous spacings
        fused = DwellBatch(dwells, times).simulate()
        for j, name in enumerate(["WE_ox", "WE_big"]):
            _, alone = proto.simulate_true_current(cell2, name)
            assert np.array_equal(fused[j], alone)

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError, match="at least one dwell"):
            DwellBatch([], np.linspace(0.0, 1.0, 5))

    def test_mismatched_time_axis_rejected(self, mixed_cell):
        proto = Chronoamperometry(e_setpoint=0.55, duration=15.0,
                                  sample_rate=5.0)  # dwell dt = 0.2
        dwell = proto.build_dwell(mixed_cell(), "WE_ox")
        with pytest.raises(SimulationError, match="time axis"):
            DwellBatch([dwell], uniform_sample_times(15.0, 10.0))


class TestAssayScheduler:
    def _jobs(self, mixed_cell, glucose_cell, n=3):
        jobs, references = [], []
        protocol = PanelProtocol(ca_dwell=12.0, sample_rate=5.0,
                                 batch_electrodes=False)
        for k in range(n):
            cell = mixed_cell() if k % 2 == 0 else glucose_cell
            jobs.append(AssayJob(cell=cell, chain=bench_chain(seed=50 + k),
                                 name=f"assay{k}",
                                 rng=np.random.default_rng(50 + k)))
            references.append(protocol.run(
                cell, bench_chain(seed=50 + k),
                rng=np.random.default_rng(50 + k)))
        return jobs, references

    def test_fleet_bit_identical_to_sequential_panels(self, mixed_cell,
                                                      glucose_cell):
        jobs, references = self._jobs(mixed_cell, glucose_cell)
        fleet = AssayScheduler(
            PanelProtocol(ca_dwell=12.0, sample_rate=5.0)).run_many(jobs)
        assert len(fleet) == len(jobs)
        assert fleet.n_dwell_groups == 1  # one shared protocol -> one group
        assert fleet.n_fused_dwells >= 4  # dwells fused across cells
        for reference, result in zip(references, fleet.results):
            assert_panel_results_equal(reference, result)

    def test_per_job_protocol_forms_its_own_group(self, glucose_cell):
        short = PanelProtocol(ca_dwell=8.0, sample_rate=5.0)
        jobs = [
            AssayJob(cell=glucose_cell, chain=bench_chain(seed=3),
                     name="default", rng=np.random.default_rng(3)),
            AssayJob(cell=glucose_cell, chain=bench_chain(seed=4),
                     name="short", rng=np.random.default_rng(4),
                     protocol=short),
        ]
        fleet = AssayScheduler(
            PanelProtocol(ca_dwell=12.0, sample_rate=5.0)).run_many(jobs)
        assert fleet.n_dwell_groups == 2
        assert (fleet.result_for("short").traces["WE1"].n_samples
                < fleet.result_for("default").traces["WE1"].n_samples)

    def test_tuple_jobs_and_lookup(self, glucose_cell):
        fleet = AssayScheduler(
            PanelProtocol(ca_dwell=8.0, sample_rate=5.0)).run_many(
                [(glucose_cell, bench_chain(seed=9))])
        assert fleet.names == ("job0",)
        assert "glucose" in fleet.by_name["job0"].readouts
        with pytest.raises(SimulationError, match="no job named"):
            fleet.result_for("missing")

    def test_duplicate_job_names_rejected_before_any_chemistry(
            self, glucose_cell):
        # Silent shadowing in by_name would lose a result; the scheduler
        # must refuse at planning time, before any engine work runs.
        jobs = [AssayJob(cell=glucose_cell, chain=bench_chain(seed=1),
                         name="twin", rng=np.random.default_rng(1)),
                AssayJob(cell=glucose_cell, chain=bench_chain(seed=2),
                         name="twin", rng=np.random.default_rng(2))]
        scheduler = AssayScheduler(PanelProtocol(ca_dwell=8.0,
                                                 sample_rate=5.0))
        with pytest.raises(SimulationError,
                           match="duplicate job names in fleet: twin"):
            scheduler.run_many(jobs)
        # The streaming form fails just as early: the error surfaces
        # before the first item is yielded.
        with pytest.raises(SimulationError, match="duplicate job names"):
            next(scheduler.run_iter(jobs))


class TestFusedCvSweeps:
    """Cross-cell CV fusion vs the per-cell sequential reference.

    Round 2 of the scheduler fuses the CYP voltammetry sweeps across
    jobs exactly like the chronoamperometric dwells.  These tests pin
    the bit-identity property on fleets mixing CV-bearing and CA-only
    cells, under every rotation of the job order, and check the new
    fusion counters actually report the fused work.
    """

    KWARGS = {"ca_dwell": 12.0, "sample_rate": 5.0}

    def _fleet_and_references(self, cells, seeds, names):
        reference_protocol = PanelProtocol(batch_electrodes=False,
                                           **self.KWARGS)
        references = [
            reference_protocol.run(cell, bench_chain(seed=seed),
                                   rng=np.random.default_rng(seed))
            for cell, seed in zip(cells, seeds)]
        jobs = [AssayJob(cell=cell, chain=bench_chain(seed=seed),
                         name=name, rng=np.random.default_rng(seed))
                for cell, seed, name in zip(cells, seeds, names)]
        fleet = AssayScheduler(PanelProtocol(**self.KWARGS)).run_many(jobs)
        return fleet, references

    @pytest.mark.parametrize("rotation", [0, 1, 2])
    def test_mixed_cv_ca_fleet_bit_identical_under_job_order(
            self, mixed_cell, glucose_cell, rotation):
        # Two CV-bearing cells (permuted electrode orders) plus one
        # CA-only cell, rotated through every job position: each job's
        # result must match its own sequential reference regardless of
        # where it lands in the fused batches.
        cells = [mixed_cell(), glucose_cell,
                 mixed_cell(("cyp", "ox", "blank"))]
        seeds = [90, 91, 92]
        names = ["assay0", "assay1", "assay2"]
        indices = [(k + rotation) % 3 for k in range(3)]
        fleet, references = self._fleet_and_references(
            [cells[i] for i in indices], [seeds[i] for i in indices],
            [names[i] for i in indices])
        # Both CYP sweeps share one waveform/rate -> one fused group.
        assert fleet.n_fused_sweeps == 2
        assert fleet.n_sweep_groups == 1
        for reference, result in zip(references, fleet.results):
            assert_panel_results_equal(reference, result)

    def test_ca_only_fleet_reports_no_fused_sweeps(self, glucose_cell):
        fleet = AssayScheduler(
            PanelProtocol(ca_dwell=8.0, sample_rate=5.0)).run_many(
                [(glucose_cell, bench_chain(seed=9))])
        assert fleet.n_fused_sweeps == 0
        assert fleet.n_sweep_groups == 0

    def test_fused_sweep_steps_counted_in_solve_steps(self, mixed_cell):
        # CV fusion work must show up in the cumulative step counter
        # (the store's zero-engine-work proof depends on it).
        cell = mixed_cell()
        fleet = AssayScheduler(PanelProtocol(**self.KWARGS)).run_many(
            [AssayJob(cell=cell, chain=bench_chain(seed=5), name="one",
                      rng=np.random.default_rng(5))])
        assert fleet.n_fused_sweeps == 1
        assert fleet.n_sweep_groups == 1
        sweep, = PanelProtocol(**self.KWARGS).plan_sweeps(
            cell, bench_chain(seed=5))
        assert fleet.n_solve_steps > sweep.times.size


class TestDigitizeBatch:
    def test_matches_sequential_digitize_calls(self, glucose_cell):
        chain = bench_chain(seed=6)
        we = glucose_cell.working_electrodes[0]
        times = np.arange(64) / 10.0
        currents = 1.0e-7 * (1.0 + np.vstack([np.sin(times), np.cos(times)]))
        batch = chain.digitize_batch(times, currents, wes=[we, we],
                                     rng=np.random.default_rng(21))
        reference_rng = np.random.default_rng(21)
        for j in range(2):
            reference = chain.digitize(times, currents[j], we=we,
                                       rng=reference_rng)
            assert np.array_equal(batch[j].current_estimate,
                                  reference.current_estimate)
            assert np.array_equal(batch[j].codes, reference.codes)

    def test_shape_validation(self, glucose_cell):
        chain = bench_chain(seed=6)
        times = np.arange(16) / 10.0
        from repro.errors import ElectronicsError
        with pytest.raises(ElectronicsError, match="channels, samples"):
            chain.digitize_batch(times, np.zeros(16))
        with pytest.raises(ElectronicsError, match="working electrodes"):
            chain.digitize_batch(times, np.zeros((2, 16)),
                                 wes=[glucose_cell.working_electrodes[0]])


class TestBenchSmoke:
    """Tier-1 gate: the throughput bench's quick mode must stay green."""

    @pytest.fixture(scope="class")
    def bench(self):
        import os

        path = (Path(__file__).resolve().parent.parent / "benchmarks"
                / "bench_panel_throughput.py")
        previous = os.environ.get("REPRO_BENCH_QUICK")
        os.environ["REPRO_BENCH_QUICK"] = "1"
        try:
            spec = importlib.util.spec_from_file_location(
                "bench_panel_throughput_smoke", path)
            module = importlib.util.module_from_spec(spec)
            sys.modules[spec.name] = module
            spec.loader.exec_module(module)
        finally:
            if previous is None:
                os.environ.pop("REPRO_BENCH_QUICK", None)
            else:
                os.environ["REPRO_BENCH_QUICK"] = previous
        yield module
        sys.modules.pop(spec.name, None)

    def test_quick_fleet_stays_fast_and_exact(self, bench):
        assert bench.QUICK and bench.N_CELLS <= 4
        out = bench.run_experiment()
        # Correctness regression: fused fleet must stay bit-identical.
        assert out["relative_deviation"] <= 1.0e-12
        # Perf regression: the fused path must not fall behind the
        # sequential reference (full bench enforces >= 3x; the smoke
        # floor is loose so CI scheduling noise cannot flake it).
        assert out["speedup"] >= 0.8
