"""Differential pulse voltammetry: program, physics, chain integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import (
    build_cytochrome,
    integrated_chain,
    paper_panel_cell,
)
from repro.errors import ProtocolError
from repro.measurement.pulse_voltammetry import DifferentialPulseVoltammetry


@pytest.fixture(scope="module")
def panel_cell():
    return paper_panel_cell()


class TestPotentialProgram:
    def test_staircase_shape(self):
        dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.2,
                                           step_potential=0.01,
                                           pulse_amplitude=0.05,
                                           pulse_width=0.1, period=0.4,
                                           dt=0.02)
        times, potentials = dpv.potential_program()
        assert times.size == dpv.n_steps * int(0.4 / 0.02)
        # First period: base 0.0, pulse -0.05 in the last 5 samples.
        assert np.all(potentials[:15] == 0.0)
        assert np.all(potentials[15:20] == pytest.approx(-0.05))
        # Second period base steps down by 10 mV.
        assert potentials[20] == pytest.approx(-0.01)

    def test_sample_indices_straddle_the_pulse(self):
        dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.2)
        times, potentials = dpv.potential_program()
        before, at_pulse = dpv._sample_indices()
        # 'before' samples sit at base potential, 'pulse' ones at pulsed.
        bases = potentials[before]
        pulsed = potentials[at_pulse]
        assert np.allclose(pulsed - bases, -dpv.pulse_amplitude)

    def test_validation(self):
        with pytest.raises(ProtocolError):
            DifferentialPulseVoltammetry(0.0, 0.0)
        with pytest.raises(ProtocolError, match="period"):
            DifferentialPulseVoltammetry(0.0, -0.5, pulse_width=0.5,
                                         period=0.4)
        with pytest.raises(ProtocolError, match="divide"):
            DifferentialPulseVoltammetry(0.0, -0.5, period=0.41, dt=0.02)
        with pytest.raises(ProtocolError, match="sample_window"):
            DifferentialPulseVoltammetry(0.0, -0.5, sample_window=0)
        with pytest.raises(ProtocolError, match="half the pulse"):
            DifferentialPulseVoltammetry(0.0, -0.5, pulse_width=0.04,
                                         dt=0.02, sample_window=2)


class TestPhysics:
    def test_peaks_at_half_amplitude_before_formal(self, panel_cell):
        # DPV peak (base-potential axis) sits ~pulse_amplitude/2 anodic
        # of E0: base + amplitude/2 spans the formal potential.
        dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.65)
        result = dpv.simulate_true(panel_cell, "WE4")
        peaks = result.find_peaks(min_height=1e-9)
        assert len(peaks) == 2
        centers = [p.potential - dpv.pulse_amplitude / 2.0 for p in peaks]
        assert centers[0] == pytest.approx(-0.250, abs=0.015)
        assert centers[1] == pytest.approx(-0.400, abs=0.015)

    def test_height_tracks_concentration(self):
        heights = []
        for c in (0.02, 0.04):
            cell = paper_panel_cell({"cholesterol": c})
            dpv = DifferentialPulseVoltammetry(e_start=-0.15, e_end=-0.6)
            result = dpv.simulate_true(cell, "WE5")
            peaks = result.find_peaks(min_height=1e-10)
            heights.append(max(p.height for p in peaks))
        assert heights[1] / heights[0] == pytest.approx(2.0, rel=0.15)

    def test_differential_is_charging_free(self, panel_cell):
        # The oxidase electrode swept by DPV shows ~zero differential:
        # no redox couple in the window, and charging is rejected by
        # construction (samples sit long after each step).
        dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.3)
        result = dpv.simulate_true(panel_cell, "WE1")
        assert np.max(np.abs(result.differential)) < 1e-10

    def test_no_loaded_channels_flat(self):
        cell = paper_panel_cell({"glucose": 2.0})  # drugs absent
        dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.65)
        result = dpv.simulate_true(cell, "WE4")
        assert np.max(np.abs(result.differential)) < 1e-10


class TestThroughChain:
    def test_dominant_peak_survives_noise(self, panel_cell):
        dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.65,
                                           pulse_width=0.16,
                                           sample_window=4)
        chain = integrated_chain("cyp_micro", n_channels=5, seed=17)
        result = dpv.run(panel_cell, "WE4", chain,
                         rng=np.random.default_rng(17))
        peaks = result.find_peaks(min_height=5e-8)
        assert len(peaks) >= 1
        tallest = max(peaks, key=lambda p: p.height)
        center = tallest.potential - dpv.pulse_amplitude / 2.0
        assert center == pytest.approx(-0.400, abs=0.02)  # aminopyrine

    def test_reproducible_with_seed(self, panel_cell):
        dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.65)
        chain = integrated_chain("cyp_micro", n_channels=5, seed=18)
        a = dpv.run(panel_cell, "WE4", chain, rng=np.random.default_rng(1))
        chain2 = integrated_chain("cyp_micro", n_channels=5, seed=18)
        b = dpv.run(panel_cell, "WE4", chain2, rng=np.random.default_rng(1))
        assert np.array_equal(a.differential, b.differential)
