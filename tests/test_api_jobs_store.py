"""The job-level execution pipeline: JobKey/JobPlan, per-job store
records, store eviction + statistics, and the zero-solve acceptance bar.

Pins the acceptance criteria of the job-level redesign:

- ``JobKey`` hashing is insensitive to payload dict key order but
  sensitive to the seed, the injection schedules, and every numeric
  field of the spec (property-style sweeps over the payload),
- a fleet/sweep run against a warm per-job store is bit-identical to an
  uncached run, on both backends, with cached and fresh records merged
  in job order,
- a twice-run sweep's second pass performs **zero** engine solves
  (``EngineStats.n_solve_steps`` + a monkeypatched scheduler), and a
  partially warm sweep simulates only the missing grid points,
- ``RunStore`` evicts least-recently-used records under
  ``max_count``/``max_bytes``, counts hits/misses/evictions, survives a
  lost index, skips corrupt records with a warning when listing, and
  raises :class:`~repro.errors.StoreError` naming the file otherwise,
- ``ProcessExecutor`` never spawns idle workers when there are fewer
  jobs than workers.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro import api
from repro.api.executors import shard_indices
from repro.errors import StoreError

CA_DWELL = 5.0  # short dwell keeps the suite fast; physics unchanged


def assay(name: str = "job", seed: int = 21, **protocol) -> api.AssaySpec:
    protocol.setdefault("ca_dwell", CA_DWELL)
    return api.AssaySpec(name=name, seed=seed,
                         chain=api.ChainSpec(seed=seed),
                         protocol=api.PanelProtocolSpec(**protocol))


def small_fleet(cells: int = 3, seed: int = 40) -> api.FleetSpec:
    return api.FleetSpec.homogeneous(cells=cells, seed=seed,
                                     ca_dwell=CA_DWELL)


def assert_results_identical(ref, got):
    """Bit-for-bit equality of two PanelResults (live or rehydrated)."""
    assert set(ref.traces) == set(got.traces)
    for name in ref.traces:
        assert np.array_equal(ref.traces[name].times,
                              got.traces[name].times)
        assert np.array_equal(ref.traces[name].current,
                              got.traces[name].current)
        assert np.array_equal(ref.traces[name].true_current,
                              got.traces[name].true_current)
    assert set(ref.voltammograms) == set(got.voltammograms)
    for name in ref.voltammograms:
        for field in ("times", "potentials", "current", "sweep_sign"):
            assert np.array_equal(getattr(ref.voltammograms[name], field),
                                  getattr(got.voltammograms[name], field))
        assert (ref.voltammograms[name].scan_rate
                == got.voltammograms[name].scan_rate)
    assert set(ref.readouts) == set(got.readouts)
    for target in ref.readouts:
        a, b = ref.readouts[target], got.readouts[target]
        assert (a.signal, a.we_name, a.method, a.e_applied) \
            == (b.signal, b.we_name, b.method, b.e_applied)
        assert a.peak == b.peak
    assert ref.assay_time == got.assay_time
    assert ref.blank_current == got.blank_current
    assert ref.blank_e_applied == got.blank_e_applied


def assert_records_identical(ref, got):
    assert ref.job_name == got.job_name
    assert ref.seed == got.seed
    assert ref.spec_hash == got.spec_hash
    assert ref.spec == got.spec
    assert_results_identical(ref.result, got.result)


def _shuffled(node, rng: random.Random):
    """A deep copy with every dict's key order randomised."""
    if isinstance(node, dict):
        keys = list(node)
        rng.shuffle(keys)
        return {key: _shuffled(node[key], rng) for key in keys}
    if isinstance(node, list):
        return [_shuffled(item, rng) for item in node]
    return node


class TestJobKey:
    """Property-style pins on the job content address."""

    def test_insensitive_to_payload_key_order(self):
        spec = assay(injections=(api.InjectionEvent(2.0, "glucose", 0.5),))
        payload = spec.to_dict()
        base = api.JobKey.for_payload(payload)
        for trial in range(10):
            reordered = _shuffled(payload, random.Random(trial))
            assert list(reordered) != list(payload) or trial == 0 \
                or len(payload) < 2
            assert api.JobKey.for_payload(reordered).digest == base.digest

    def test_for_assay_matches_streamed_record_hash(self):
        spec = assay(seed=33)
        key = api.JobKey.for_assay(spec)
        assert key.digest == api.spec_hash(spec)
        assert key.seed == 33 and key.name == "job"
        record = next(iter(api.iter_results(spec)))
        assert record.spec_hash == key.digest

    def test_sensitive_to_seed(self):
        assert api.JobKey.for_assay(assay(seed=1)).digest \
            != api.JobKey.for_assay(assay(seed=2)).digest

    def test_sensitive_to_injection_schedules(self):
        base = api.JobKey.for_assay(assay()).digest
        one = api.JobKey.for_assay(assay(
            injections=(api.InjectionEvent(2.0, "glucose", 0.5),))).digest
        shifted = api.JobKey.for_assay(assay(
            injections=(api.InjectionEvent(3.0, "glucose", 0.5),))).digest
        per_we = api.JobKey.for_assay(assay(
            injections={"WE1": (api.InjectionEvent(2.0, "glucose",
                                                   0.5),)})).digest
        assert len({base, one, shifted, per_we}) == 4

    @pytest.mark.parametrize("field", [
        "ca_dwell", "cv_window_margin", "scan_rate", "sample_rate",
        "settle_between", "peak_min_height"])
    def test_sensitive_to_every_numeric_protocol_field(self, field):
        defaults = api.PanelProtocolSpec()
        bumped = assay(**{field: getattr(defaults, field) * 1.25})
        reference = assay(**{field: getattr(defaults, field)})
        assert api.JobKey.for_assay(bumped).digest \
            != api.JobKey.for_assay(reference).digest

    def test_sensitive_to_chain_and_cell_numbers(self):
        base = api.JobKey.for_assay(assay()).digest
        chain = api.AssaySpec(name="job", seed=21,
                              chain=api.ChainSpec(seed=21, n_channels=6),
                              protocol=api.PanelProtocolSpec(
                                  ca_dwell=CA_DWELL))
        cell = api.AssaySpec(name="job", seed=21,
                             chain=api.ChainSpec(seed=21),
                             cell=api.CellSpec(
                                 concentrations={"glucose": 1.5}),
                             protocol=api.PanelProtocolSpec(
                                 ca_dwell=CA_DWELL))
        other_cell = api.AssaySpec(name="job", seed=21,
                                   chain=api.ChainSpec(seed=21),
                                   cell=api.CellSpec(
                                       concentrations={"glucose": 1.6}),
                                   protocol=api.PanelProtocolSpec(
                                       ca_dwell=CA_DWELL))
        digests = {base, api.JobKey.for_assay(chain).digest,
                   api.JobKey.for_assay(cell).digest,
                   api.JobKey.for_assay(other_cell).digest}
        assert len(digests) == 4

    def test_plan_splits_hits_and_misses(self, tmp_path):
        store = api.RunStore(tmp_path)
        fleet = small_fleet(cells=3, seed=50)
        api.run(fleet.assays[1], store=store)
        plan = api.JobPlan.plan(fleet, store)
        assert len(plan) == 3
        assert plan.n_cached == 1 and set(plan.cached) == {1}
        assert plan.miss_indices == (0, 2)
        miss = plan.miss_fleet()
        assert [a.name for a in miss.assays] == ["cell00", "cell02"]
        assert miss.execution == fleet.execution
        # Fully warm: no miss fleet at all.
        api.run(fleet, store=store)
        assert api.JobPlan.plan(fleet, store).miss_fleet() is None


class TestWarmStoreBitIdentity:
    """The acceptance bar: warm == cold, bit for bit, on every backend."""

    @pytest.mark.parametrize("backend", [None, "process"])
    def test_partially_warm_fleet_matches_uncached(self, tmp_path,
                                                   backend):
        spec = small_fleet(cells=3, seed=60)
        ref = list(api.iter_results(spec))
        store = api.RunStore(tmp_path)
        # Warm one job through a standalone assay run (same JobKey).
        api.run(spec.assays[1], store=store)
        kwargs = {"backend": api.ProcessExecutor(workers=2)} \
            if backend else {}
        got = list(api.iter_results(spec, store=store, **kwargs))
        assert [r.cached for r in got] == [False, True, False]
        assert isinstance(got[1], api.CachedAssayRecord)
        for a, b in zip(ref, got):
            assert_records_identical(a, b)
        # And a fully warm replay still matches, job order preserved.
        warm = list(api.iter_results(spec, store=store, **kwargs))
        assert all(r.cached for r in warm)
        for a, b in zip(ref, warm):
            assert_records_identical(a, b)

    def test_run_collects_merged_fleet_record(self, tmp_path):
        spec = small_fleet(cells=2, seed=70)
        ref = api.run(spec)
        store = api.RunStore(tmp_path)
        api.run(spec.assays[0], store=store)
        got = api.run(spec, store=store)
        assert got.cached is False
        assert [r.cached for r in got.records] == [True, False]
        for a, b in zip(ref.records, got.records):
            assert_records_identical(a, b)
        # The fleet's engine totals describe the live pass only: the
        # miss fleet fused fewer dwells (steps per group are job-count
        # independent, so the dwell count is the discriminating stat).
        assert got.engine.n_solve_steps > 0
        assert 0 < got.engine.n_fused_dwells < ref.engine.n_fused_dwells


class TestSweepMemoisation:
    def _sweep(self, name: str = "study", seeds=(1, 2)) -> api.SweepSpec:
        return api.SweepSpec(name=name, base=assay(name="pt", seed=7),
                             grid={"seed": list(seeds)})

    def test_twice_run_sweep_second_pass_zero_engine_solves(
            self, tmp_path, monkeypatch):
        store = api.RunStore(tmp_path)
        sweep = self._sweep()
        first = api.run(sweep, store=store)
        assert first.cached is False
        assert first.engine.n_solve_steps > 0

        import repro.engine.scheduler as scheduler

        def boom(self, jobs):
            raise AssertionError("engine invoked on a warm sweep")

        monkeypatch.setattr(scheduler.AssayScheduler, "run_iter", boom)
        # The literal second pass is a whole-run hit.
        again = api.run(sweep, store=store)
        assert again.cached is True
        # A renamed sweep misses the whole-run record but every grid
        # point is warm: zero engine solves, records bit-identical.
        renamed = self._sweep(name="study-rerun")
        rec = api.run(renamed, store=store)
        assert rec.cached is False
        assert all(r.cached for r in rec.records)
        assert rec.engine == api.EngineStats(n_fused_dwells=0,
                                             n_dwell_groups=0,
                                             n_solve_steps=0)
        for a, b in zip(first.records, rec.records):
            assert_records_identical(a, b)

    def test_partially_warm_sweep_simulates_only_missing_points(
            self, tmp_path, monkeypatch):
        store = api.RunStore(tmp_path)
        api.run(self._sweep(seeds=(1, 2)), store=store)

        import repro.engine.scheduler as scheduler

        scheduled = []
        original = scheduler.AssayScheduler.run_iter

        def spy(self, jobs):
            jobs = list(jobs)
            scheduled.append([job.name for job in jobs])
            return original(self, jobs)

        monkeypatch.setattr(scheduler.AssayScheduler, "run_iter", spy)
        bigger = self._sweep(seeds=(1, 2, 3))
        rec = api.run(bigger, store=store)
        # Only grid point #2 (seed 3) reached the scheduler.
        assert scheduled == [["pt#2"]]
        assert [r.cached for r in rec.records] == [True, True, False]
        assert rec.store_stats.hits >= 2

    def test_store_stats_stamped_into_provenance(self, tmp_path):
        store = api.RunStore(tmp_path)
        rec = api.run(self._sweep(), store=store)
        stamped = rec.provenance()["store"]
        assert stamped["misses"] >= 1 and stamped["records"] == 3
        assert rec.to_dict()["provenance"]["store"] == stamped
        json.dumps(rec.to_dict())  # provenance stays JSON-serialisable
        again = api.run(self._sweep(), store=store)
        assert again.provenance()["store"]["hits"] == 1


class _FakeRecord:
    """A minimal duck-typed record for store bookkeeping tests."""

    cached = False
    kind = "assay"

    def __init__(self, digest: str, payload: str = "x"):
        self.spec_hash = digest
        self.payload = payload

    def to_dict(self) -> dict:
        return {"provenance": {"kind": self.kind, "spec_hash":
                               self.spec_hash, "schema_version": 2,
                               "seed": 1, "wall_time_s": 0.0,
                               "cached": False},
                "spec": {"kind": self.kind}, "result": {},
                "pad": self.payload}


def _digest(label: str) -> str:
    import hashlib

    return hashlib.sha256(label.encode()).hexdigest()


class TestEvictionAndStats:
    def test_lru_eviction_by_max_count(self, tmp_path):
        store = api.RunStore(tmp_path)
        digests = [_digest(f"r{i}") for i in range(4)]
        for digest in digests:
            store.put(_FakeRecord(digest))
        # Touch the oldest record so it is no longer LRU.
        assert store.get(digests[0]) is not None
        evicted, freed = store.gc(max_count=2)
        assert evicted == 2 and freed > 0
        remaining = set(store.hashes())
        assert remaining == {digests[0], digests[3]}
        stats = store.stats()
        assert stats.evictions == 2 and stats.records == 2

    def test_max_bytes_eviction(self, tmp_path):
        store = api.RunStore(tmp_path)
        for i in range(3):
            store.put(_FakeRecord(_digest(f"b{i}"), payload="y" * 2000))
        total = store.stats().bytes
        per_record = total // 3
        evicted, freed = store.gc(max_bytes=per_record + 10)
        assert evicted == 2
        assert store.stats().bytes <= per_record + 10

    def test_store_limits_enforced_on_put(self, tmp_path):
        store = api.RunStore(tmp_path, max_count=2)
        for i in range(5):
            store.put(_FakeRecord(_digest(f"c{i}")))
        assert len(store) == 2
        # Most-recently-written records survive.
        assert set(store.hashes()) == {_digest("c3"), _digest("c4")}
        assert store.stats().evictions == 3

    def test_invalid_limits_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="max_count"):
            api.RunStore(tmp_path, max_count=-1)
        with pytest.raises(StoreError, match="max_bytes"):
            api.RunStore(tmp_path, max_bytes=-5)

    def test_index_rebuilt_when_lost(self, tmp_path):
        store = api.RunStore(tmp_path)
        for i in range(3):
            store.put(_FakeRecord(_digest(f"d{i}")))
        store.index_path.unlink()
        fresh = api.RunStore(tmp_path)
        stats = fresh.stats()
        assert stats.records == 3 and stats.bytes > 0
        # Rebuilt counters start over; eviction still works.
        assert stats.hits == stats.misses == stats.evictions == 0
        evicted, _ = fresh.gc(max_count=1)
        assert evicted == 2 and len(fresh) == 1

    def test_hit_miss_counters(self, tmp_path):
        store = api.RunStore(tmp_path)
        digest = _digest("counted")
        assert store.get(digest) is None
        store.put(_FakeRecord(digest))
        assert store.get(digest) is not None
        assert store.get_job(digest) is not None  # summary-only fallback
        stats = store.stats()
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)
        # Listing is not a lookup: counters unchanged.
        list(store.records())
        assert store.stats().hits == 2

    def test_counters_survive_clear(self, tmp_path):
        store = api.RunStore(tmp_path)
        store.put(_FakeRecord(_digest("e")))
        assert store.get(_digest("e")) is not None
        assert store.clear() == 1
        stats = store.stats()
        assert stats.records == 0 and stats.hits == 1


class TestStoreConcurrency:
    """Concurrent writers on one root must not drop index updates."""

    def test_two_threads_hammering_put_and_gc(self, tmp_path):
        import threading

        # Two RunStore instances on the same root — the worst case:
        # no shared in-memory index, so every save is a cross-process
        # style read-modify-write serialised only by index.lock.
        stores = [api.RunStore(tmp_path), api.RunStore(tmp_path)]
        errors = []

        def hammer(worker: int) -> None:
            try:
                store = stores[worker]
                for i in range(25):
                    store.put(_FakeRecord(_digest(f"w{worker}r{i}")))
                    if i % 5 == 4:
                        store.gc(max_count=200)  # never evicts; syncs
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert not (tmp_path / "index.lock").exists()
        # Every record file landed, and — the regression — the saved
        # index agrees without a rebuild: neither writer's entries were
        # lost to the other's read-modify-write.
        expected = {_digest(f"w{w}r{i}") for w in range(2)
                    for i in range(25)}
        fresh = api.RunStore(tmp_path)
        assert set(fresh.hashes()) == expected
        index = json.loads(fresh.index_path.read_text())
        assert set(index["records"]) == expected

    def test_one_store_shared_by_threads_counts_every_hit(self, tmp_path):
        import threading

        store = api.RunStore(tmp_path)
        digest = _digest("shared")
        store.put(_FakeRecord(digest))
        errors = []

        def reader() -> None:
            try:
                for _ in range(20):
                    assert store.get(digest) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # The in-process mutex makes hit counting exact for one shared
        # instance (cross-process counters are only best-effort).
        assert store.stats().hits == 40

    def test_stale_lockfile_is_broken_not_waited_out(self, tmp_path):
        import os as _os

        store = api.RunStore(tmp_path)
        lock = tmp_path / "index.lock"
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("")
        old = 100.0  # mtime far past the staleness horizon
        _os.utime(lock, (old, old))
        store.put(_FakeRecord(_digest("after-stale")))  # must not block
        assert not lock.exists()
        assert len(store) == 1

    def test_held_lockfile_times_out_with_warning(self, tmp_path):
        store = api.RunStore(tmp_path)
        lock = tmp_path / "index.lock"
        lock.write_text("")  # fresh mtime: a live holder
        with pytest.warns(RuntimeWarning, match="index.lock"):
            with store._index_lock(wait_s=0.05):
                pass
        # The foreign lockfile is not ours to remove.
        assert lock.exists()


class TestStoreRobustness:
    def test_get_job_corrupt_json_quarantines_as_miss(self, tmp_path):
        store = api.RunStore(tmp_path)
        record = api.run(assay(seed=91), store=store)
        path = store.path_for(record.spec_hash)
        path.write_text("{truncated")
        with pytest.warns(RuntimeWarning, match=path.name):
            assert store.get_job(record.spec_hash) is None
        assert (tmp_path / "quarantine" / path.name).exists()
        assert not path.exists()
        stats = store.stats()
        assert stats.quarantined == 1
        # A second lookup is a plain miss: the corrupt file is gone.
        assert store.get(record.spec_hash) is None
        assert store.stats().quarantined == 1

    def test_get_job_malformed_samples_quarantines(self, tmp_path):
        store = api.RunStore(tmp_path)
        record = api.run(assay(seed=92), store=store)
        path = store.path_for(record.spec_hash)
        payload = json.loads(path.read_text())
        payload["samples"] = {"traces": "nonsense"}
        path.write_text(json.dumps(payload))
        # The edit breaks the integrity checksum first; strip the seal
        # to reach the structural (malformed samples) check too.
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert store.get_job(record.spec_hash) is None
        api.run(assay(seed=92), store=store)  # re-warm
        payload = json.loads(path.read_text())
        payload["samples"] = {"traces": "nonsense"}
        del payload["integrity"]
        path.write_text(json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert store.get_job(record.spec_hash) is None
        assert store.stats().quarantined == 2

    def test_checksum_mismatch_quarantines(self, tmp_path):
        # A single flipped value in an otherwise well-formed record
        # fails verify-on-read — this is what distinguishes the sealed
        # store from a parse-only one.
        store = api.RunStore(tmp_path)
        record = api.run(assay(seed=93), store=store)
        path = store.path_for(record.spec_hash)
        payload = json.loads(path.read_text())
        payload["provenance"]["wall_time_s"] = 12345.0
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            assert store.get_job(record.spec_hash) is None
        assert store.stats().quarantined == 1

    def test_legacy_record_without_integrity_still_loads(self, tmp_path):
        store = api.RunStore(tmp_path)
        record = api.run(assay(seed=94), store=store)
        path = store.path_for(record.spec_hash)
        payload = json.loads(path.read_text())
        del payload["integrity"]  # pre-seal store format
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        warm = store.get_job(record.spec_hash)
        assert warm is not None and warm.cached

    def test_records_quarantines_corrupt(self, tmp_path):
        store = api.RunStore(tmp_path)
        store.put(_FakeRecord(_digest("good")))
        bad = store.path_for(_digest("bad"))
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{truncated")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            listed = list(store.records())
        assert [r.spec_hash for r in listed] == [_digest("good")]
        # Quarantine is permanent: the next listing is clean, and an
        # index rebuild never readopts the quarantined file.
        assert list(store.records())[0].spec_hash == _digest("good")
        assert list(store.hashes()) == [_digest("good")]
        assert (tmp_path / "quarantine" / bad.name).exists()

    def test_persisted_job_stats_are_deltas_not_fleet_cumulative(
            self, tmp_path):
        # Streamed records carry stream-cumulative stats; the persisted
        # per-job copies must describe only their own job, so a later
        # standalone rehydrate does not claim the whole fleet's work.
        store = api.RunStore(tmp_path)
        spec = small_fleet(cells=3, seed=85)
        fleet = api.run(spec, store=store)
        stored = [store.get_job(api.JobKey.for_assay(a))
                  for a in spec.assays]
        assert all(isinstance(r, api.CachedAssayRecord) for r in stored)
        for field in ("n_fused_dwells", "n_dwell_groups", "n_solve_steps"):
            per_job = [getattr(r.engine, field) for r in stored]
            assert sum(per_job) == getattr(fleet.engine, field)
        # The shared dwell group is charged to the job that triggered
        # it; later members added no solves of their own.
        assert stored[0].engine.n_solve_steps > 0
        assert stored[1].engine.n_solve_steps == 0
        assert all(0.0 <= r.wall_time_s <= fleet.wall_time_s
                   for r in stored)

    def test_cached_assay_record_round_trips_peaks(self, tmp_path):
        store = api.RunStore(tmp_path)
        live = api.run(assay(seed=93), store=store)
        warm = api.run(assay(seed=93), store=store)
        assert isinstance(warm, api.CachedAssayRecord)
        assert warm.cached and warm.engine == live.engine
        cyp = [r for r in live.result.readouts.values()
               if r.peak is not None]
        assert cyp, "panel should quantify at least one CV target"
        assert_results_identical(live.result, warm.result)
        # The summary serialisation is unchanged by the round trip.
        assert warm.to_dict()["result"] == live.to_dict()["result"]


class TestProcessExecutorIdleWorkers:
    def test_fewer_jobs_than_workers_spawns_no_idle_workers(
            self, monkeypatch):
        import repro.api.executors as executors

        captured = {}
        real = executors.ProcessPoolExecutor

        class Spy(real):
            def __init__(self, max_workers=None, **kwargs):
                captured["max_workers"] = max_workers
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(executors, "ProcessPoolExecutor", Spy)
        spec = small_fleet(cells=2, seed=95)
        records = list(api.iter_results(
            spec, backend=api.ProcessExecutor(workers=8)))
        assert [r.job_name for r in records] == ["cell00", "cell01"]
        assert captured["max_workers"] == 2

    @pytest.mark.parametrize("mode", ["interleave", "contiguous"])
    def test_shard_indices_never_returns_empty_shards(self, mode):
        for n_jobs in (1, 2, 3, 7):
            for n_shards in (1, 2, 5, 16):
                shards = shard_indices(n_jobs, n_shards, mode)
                assert all(shards)
                assert len(shards) == min(n_jobs, n_shards)
        assert shard_indices(2, 8, mode) == [[0], [1]]
