"""Diffusion solver: conservation, stability, Cottrell validation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.analytic import cottrell_current
from repro.chem.constants import FARADAY
from repro.chem.diffusion import (
    CrankNicolsonDiffusion,
    Grid1D,
    default_domain_length,
    thomas_solve,
)
from repro.errors import SimulationError


class TestGrid:
    def test_uniform(self):
        grid = Grid1D.uniform(1e-4, 11)
        assert grid.n_nodes == 11
        assert grid.length == pytest.approx(1e-4)
        assert np.allclose(np.diff(grid.x), 1e-5)

    def test_expanding_starts_fine(self):
        grid = Grid1D.expanding(1e-6, 1e-3, growth=1.1)
        spacings = grid.spacings
        assert spacings[0] == pytest.approx(1e-6)
        assert np.all(np.diff(spacings) > 0.0)
        assert grid.length >= 1e-3

    def test_cell_volumes_sum_to_length(self):
        # Conservation requires the finite volumes to tile the domain.
        grid = Grid1D.expanding(1e-6, 1e-3, growth=1.15)
        assert np.sum(grid.cell_volumes) == pytest.approx(grid.length)

    def test_must_start_at_zero(self):
        with pytest.raises(SimulationError):
            Grid1D(np.array([1e-6, 2e-6, 3e-6]))

    def test_must_increase(self):
        with pytest.raises(SimulationError):
            Grid1D(np.array([0.0, 2e-6, 1e-6]))

    def test_default_domain_outruns_diffusion(self):
        d, t = 6.7e-10, 100.0
        assert default_domain_length(d, t) > math.sqrt(d * t)


class TestThomas:
    @given(st.integers(min_value=3, max_value=40), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_solver(self, n, seed):
        rng = np.random.default_rng(seed)
        lower = rng.uniform(-1.0, 1.0, n - 1)
        upper = rng.uniform(-1.0, 1.0, n - 1)
        # Strictly diagonally dominant: unique solution, stable elimination.
        diag = 2.5 + np.abs(rng.uniform(0.0, 1.0, n))
        rhs = rng.uniform(-1.0, 1.0, n)
        dense = np.diag(diag)
        dense[np.arange(n - 1) + 1, np.arange(n - 1)] = lower
        dense[np.arange(n - 1), np.arange(n - 1) + 1] = upper
        expected = np.linalg.solve(dense, rhs)
        out = thomas_solve(lower, diag, upper, rhs)
        assert np.allclose(out, expected, rtol=1e-9, atol=1e-12)

    def test_size_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            thomas_solve(np.zeros(2), np.ones(3), np.zeros(1), np.ones(3))


class TestConservation:
    @given(st.integers(min_value=0, max_value=2**31),
           st.floats(min_value=0.01, max_value=0.2))
    @settings(max_examples=20, deadline=None)
    def test_sealed_domain_conserves_mass(self, seed, dt):
        # No-flux at both ends: total mass is invariant under stepping.
        rng = np.random.default_rng(seed)
        grid = Grid1D.expanding(2e-6, 5e-4, growth=1.1)
        solver = CrankNicolsonDiffusion(grid, 6.7e-10, dt,
                                        bulk_boundary="noflux")
        c = rng.uniform(0.0, 2.0, grid.n_nodes)
        m0 = solver.total_mass(c)
        for _ in range(20):
            c = solver.step(c, surface_flux=0.0)
        assert solver.total_mass(c) == pytest.approx(m0, rel=1e-9)

    def test_sealed_domain_relaxes_to_uniform(self):
        grid = Grid1D.uniform(2e-4, 40)
        solver = CrankNicolsonDiffusion(grid, 1e-9, 0.5,
                                        bulk_boundary="noflux")
        c = np.zeros(40)
        c[:10] = 1.0
        m0 = solver.total_mass(c)
        for _ in range(20000):
            c = solver.step(c)
        expected = m0 / grid.length
        assert np.allclose(c, expected, rtol=1e-3)

    def test_surface_flux_removes_mass_at_known_rate(self):
        grid = Grid1D.uniform(2e-4, 40)
        solver = CrankNicolsonDiffusion(grid, 1e-9, 0.1,
                                        bulk_boundary="noflux")
        c = np.full(40, 1.0)
        flux = 1e-7  # mol/(m^2 s) removed at the electrode
        m0 = solver.total_mass(c)
        n_steps = 50
        for _ in range(n_steps):
            c = solver.step(c, surface_flux=flux)
        removed = m0 - solver.total_mass(c)
        assert removed == pytest.approx(flux * n_steps * 0.1, rel=1e-6)


class TestCottrell:
    def test_diffusion_limited_step_follows_cottrell(self):
        # Drive the surface to zero with a huge linear sink; the inward
        # flux must match Cottrell within a few percent at all times.
        d = 6.7e-10
        grid = Grid1D.expanding(5e-7, default_domain_length(d, 20.0),
                                growth=1.08)
        dt = 0.02
        solver = CrankNicolsonDiffusion(grid, d, dt)
        c = np.full(grid.n_nodes, 1.0)
        for k in range(1, 1001):
            c = solver.step_linear_surface(c, 0.0, 10.0)
            if k % 200 == 0:
                t = k * dt
                expected = cottrell_current(1, 1.0, 1.0, d, t) / FARADAY
                measured = solver.surface_gradient_flux(c)
                assert measured == pytest.approx(expected, rel=0.03)

    def test_dirichlet_far_boundary_holds_bulk(self):
        grid = Grid1D.uniform(1e-4, 30)
        solver = CrankNicolsonDiffusion(grid, 6.7e-10, 0.05)
        c = np.full(30, 2.0)
        for _ in range(100):
            c = solver.step_linear_surface(c, 0.0, 1.0)
        assert c[-1] == pytest.approx(2.0)
        assert c[0] < 0.1  # surface depleted


class TestBoundaryHandling:
    def test_negative_sink_slope_rejected(self):
        grid = Grid1D.uniform(1e-4, 10)
        solver = CrankNicolsonDiffusion(grid, 1e-9, 0.1)
        with pytest.raises(SimulationError):
            solver.step_linear_surface(np.ones(10), 0.0, -1.0)

    def test_profile_size_checked(self):
        grid = Grid1D.uniform(1e-4, 10)
        solver = CrankNicolsonDiffusion(grid, 1e-9, 0.1)
        with pytest.raises(SimulationError):
            solver.step(np.ones(7))

    def test_surface_response_cached_and_positive_at_surface(self):
        grid = Grid1D.uniform(1e-4, 10)
        solver = CrankNicolsonDiffusion(grid, 1e-9, 0.1)
        w1 = solver.surface_response()
        w2 = solver.surface_response()
        assert w1 is w2
        assert w1[0] > 0.0

    def test_unknown_boundary_rejected(self):
        grid = Grid1D.uniform(1e-4, 10)
        with pytest.raises(SimulationError):
            CrankNicolsonDiffusion(grid, 1e-9, 0.1, bulk_boundary="open")

    def test_undershoot_stays_negligible(self):
        # The solver does not clip (conservation); undershoot below zero
        # must stay tiny relative to the data for smooth profiles.
        grid = Grid1D.uniform(1e-4, 20)
        solver = CrankNicolsonDiffusion(grid, 1e-9, 0.5)
        c = np.full(20, 0.01)
        for _ in range(50):
            c = solver.step_linear_surface(c, 0.0, 100.0)
            assert np.min(c) > -1e-4 * 0.01
