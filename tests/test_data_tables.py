"""The paper's tables as data: integrity and calibration closure."""

from __future__ import annotations

import math

import pytest

from repro.chem.species import get_species
from repro.data.catalog import (
    PAPER_PANEL_MID_CONCENTRATIONS,
    PAPER_PANEL_TARGETS,
    build_cytochrome,
    build_oxidase,
    paper_biointerface,
    paper_panel_cell,
    reference_cell,
    reference_working_electrode,
    select_readout_class,
    table1_working_electrode,
)
from repro.data.cytochromes import TABLE_II, cyp_isoforms, cyp_records_for
from repro.data.oxidases import TABLE_I, oxidase_record
from repro.data.performance import TABLE_III, performance_record
from repro.errors import DesignError
from repro.units import sensitivity_to_paper


class TestTableI:
    def test_four_oxidases(self):
        assert len(TABLE_I) == 4
        assert [r.target for r in TABLE_I] == [
            "glucose", "lactate", "glutamate", "cholesterol"]

    def test_paper_potentials(self):
        expected = {"glucose": 0.550, "lactate": 0.650,
                    "glutamate": 0.600, "cholesterol": 0.700}
        for record in TABLE_I:
            assert record.applied_potential == pytest.approx(
                expected[record.target])

    def test_lactate_uses_fmn(self):
        # Paper Sec. I-B: lactate oxidase employs FMN, the others FAD.
        assert oxidase_record("lactate").prosthetic_group == "FMN"
        assert oxidase_record("glucose").prosthetic_group == "FAD"

    def test_targets_are_registered_species(self):
        for record in TABLE_I:
            get_species(record.target)


class TestTableII:
    def test_eleven_rows_seven_isoforms(self):
        assert len(TABLE_II) == 11
        assert len(cyp_isoforms()) == 7

    def test_paper_potentials_spot_checks(self):
        by_target = {r.target: r.reduction_potential for r in TABLE_II}
        assert by_target["clozapine"] == pytest.approx(-0.265)
        assert by_target["indinavir"] == pytest.approx(-0.750)
        assert by_target["benzphetamine"] == pytest.approx(-0.250)
        assert by_target["torsemide"] == pytest.approx(-0.019)

    def test_multi_drug_isoforms(self):
        # CYP3A4, CYP2B4, CYP2B6 and CYP2C9 each sense two drugs.
        multi = [iso for iso in cyp_isoforms()
                 if len(cyp_records_for(iso)) == 2]
        assert set(multi) == {"CYP3A4", "CYP2B4", "CYP2B6", "CYP2C9"}

    def test_two_electron_reduction(self):
        # Reaction (4): 2 e- per catalytic turnover.
        for record in TABLE_II:
            assert record.n_electrons == 2


class TestTableIII:
    def test_six_rows(self):
        assert len(TABLE_III) == 6

    def test_paper_values(self):
        record = performance_record("glucose")
        assert record.sensitivity == pytest.approx(27.7)
        assert record.lod == pytest.approx(0.575)
        assert record.linear_range == (0.5, 4.0)
        assert performance_record("cholesterol").lod is None

    def test_sensitivity_ordering(self):
        # cholesterol > lactate > glucose > glutamate >> amino > benz.
        s = {r.target: r.sensitivity for r in TABLE_III}
        assert (s["cholesterol"] > s["lactate"] > s["glucose"]
                > s["glutamate"] > s["aminopyrine"] > s["benzphetamine"])


class TestCalibrationClosure:
    """The derived probes must reproduce the paper values they came from."""

    def test_oxidase_95_points_hit_table1(self):
        for record in TABLE_I:
            we = table1_working_electrode(record.target)
            measured = we.effective_h2o2_wave().potential_for_efficiency(0.95)
            assert measured == pytest.approx(record.applied_potential,
                                             abs=1e-6), record.target

    @pytest.mark.parametrize("target", ["glucose", "lactate", "glutamate"])
    def test_oxidase_endpoint_sensitivity_hits_table3(self, target):
        record = performance_record(target)
        cell = reference_cell(target)
        we = cell.working_electrodes[0]
        e = oxidase_record(target).applied_potential
        lo, hi = record.linear_range
        cell.chamber.set_bulk(target, lo)
        i_lo = cell.measured_current(we.name, e)
        cell.chamber.set_bulk(target, hi)
        i_hi = cell.measured_current(we.name, e)
        slope = (i_hi - i_lo) / ((hi - lo) * we.area)
        assert sensitivity_to_paper(slope) == pytest.approx(
            record.sensitivity, rel=0.02)

    def test_cyp_efficiencies_within_physical_bounds(self):
        for isoform in cyp_isoforms():
            probe = build_cytochrome(isoform)
            for channel in probe.channels:
                assert 0.0 < channel.efficiency <= 2.0

    def test_reference_electrodes_use_cited_materials(self):
        assert (reference_working_electrode("benzphetamine")
                .material.name == "rhodium_graphite")
        assert (reference_working_electrode("glucose")
                .material.name == "screen_printed_carbon")


class TestPanelFactory:
    def test_paper_biointerface_layout(self):
        chip = paper_biointerface()
        assert chip.n_working == 5
        assert chip.pad_count == 7
        targets = []
        for we in chip.working_electrodes:
            targets.extend(we.targets())
        assert set(targets) == set(PAPER_PANEL_TARGETS)

    def test_panel_cell_loads_mid_concentrations(self):
        cell = paper_panel_cell()
        for target, value in PAPER_PANEL_MID_CONCENTRATIONS.items():
            assert cell.chamber.bulk(target) == pytest.approx(value)

    def test_electrode_areas_are_paper_area(self):
        chip = paper_biointerface()
        for we in chip.working_electrodes:
            assert we.area == pytest.approx(0.23e-6)


class TestReadoutClasses:
    def test_selection_prefers_finest(self):
        assert select_readout_class(0.5e-6) == "cyp_micro"
        assert select_readout_class(5e-6) == "oxidase"
        assert select_readout_class(50e-6) == "cyp"

    def test_over_range_rejected(self):
        with pytest.raises(DesignError):
            select_readout_class(1e-3)
