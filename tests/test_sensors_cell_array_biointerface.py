"""Cells, cross-talk, the Fig. 4 chip, and sensor arrays."""

from __future__ import annotations

import pytest

from repro.chem.solution import Chamber, Injection
from repro.sensors.array import SensorArray
from repro.sensors.biointerface import BioInterface
from repro.sensors.cell import CrosstalkModel, ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import with_oxidase
from repro.sensors.materials import get_material
from repro.errors import SensorError

def oxidase_we(name, probe, area=7e-6):
    return WorkingElectrode(
        electrode=Electrode(name=name, role=ElectrodeRole.WORKING,
                            material=get_material("gold"), area=area),
        functionalization=with_oxidase(probe))


class TestCrosstalkModel:
    def test_decays_with_distance(self):
        model = CrosstalkModel()
        assert model.coupling(1e-3) < model.coupling(1e-4)

    def test_base_bounds(self):
        with pytest.raises(SensorError):
            CrosstalkModel(base=1.0)


class TestCell:
    def test_electrode_count_n_plus_2(self, glucose_oxidase, cell_factory):
        # The paper's n-target structure: n WEs sharing RE and CE.
        wes = [oxidase_we(f"WE{i}", glucose_oxidase) for i in range(3)]
        cell = cell_factory(wes)
        assert cell.electrode_count == 5

    def test_counter_must_cover_we(self, glucose_oxidase):
        we = oxidase_we("WE1", glucose_oxidase, area=7e-6)
        reference = Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                              material=get_material("silver"), area=7e-6)
        small_counter = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                                  material=get_material("gold"), area=1e-6)
        with pytest.raises(SensorError, match="at least as large"):
            ElectrochemicalCell(chamber=Chamber(), working_electrodes=[we],
                                reference=reference, counter=small_counter)

    def test_roles_enforced(self, glucose_oxidase):
        we = oxidase_we("WE1", glucose_oxidase)
        silver = Electrode(name="X", role=ElectrodeRole.REFERENCE,
                           material=get_material("silver"), area=7e-6)
        with pytest.raises(SensorError, match="expected CE"):
            ElectrochemicalCell(chamber=Chamber(), working_electrodes=[we],
                                reference=silver, counter=silver)

    def test_duplicate_we_names_rejected(self, glucose_oxidase, cell_factory):
        wes = [oxidase_we("WE1", glucose_oxidase),
               oxidase_we("WE1", glucose_oxidase)]
        with pytest.raises(SensorError, match="duplicate"):
            cell_factory(wes)

    def test_we_lookup(self, glucose_cell):
        assert glucose_cell.working_electrode("WE1").name == "WE1"
        with pytest.raises(SensorError, match="no working electrode"):
            glucose_cell.working_electrode("WE9")

    def test_crosstalk_small_but_nonzero(self, glucose_oxidase, cell_factory):
        # The paper argues cross-talk is negligible; the model keeps it
        # measurable so the claim is testable.
        wes = [oxidase_we("WE1", glucose_oxidase),
               oxidase_we("WE2", glucose_oxidase)]
        cell = cell_factory(wes)
        cell.chamber.set_bulk("glucose", 2.0)
        own = cell.faradaic_current("WE1", 0.55)
        spill = cell.crosstalk_current("WE1", 0.55)
        assert 0.0 < spill < 0.01 * own

    def test_blank_current_virtual(self, glucose_cell):
        # Without a dedicated blank WE, a virtual blank is evaluated; it
        # must not respond to glucose.
        blank = glucose_cell.blank_current(0.55)
        signal = glucose_cell.faradaic_current("WE1", 0.55)
        assert blank < 0.05 * signal

    def test_measured_current_includes_charging(self, glucose_cell):
        static = glucose_cell.measured_current("WE1", 0.55, scan_rate=0.0)
        sweeping = glucose_cell.measured_current("WE1", 0.55, scan_rate=0.02)
        assert sweeping > static


class TestBioInterface:
    def test_gold_chip_factory(self, glucose_oxidase):
        wes = [oxidase_we(f"WE{i}", glucose_oxidase, area=0.23e-6)
               for i in range(1, 6)]
        chip = BioInterface.gold_chip("test", wes)
        assert chip.n_working == 5
        assert chip.pad_count == 7  # 5 WE + RE + CE, the Fig. 4 count
        assert chip.reference.material.name == "silver"
        assert chip.counter.material.name == "gold"

    def test_die_area_grows_with_we_count(self, glucose_oxidase):
        wes3 = [oxidase_we(f"WE{i}", glucose_oxidase, area=0.23e-6)
                for i in range(3)]
        wes5 = [oxidase_we(f"WE{i}", glucose_oxidase, area=0.23e-6)
                for i in range(5)]
        assert (BioInterface.gold_chip("c5", wes5).die_area
                > BioInterface.gold_chip("c3", wes3).die_area)

    def test_as_cell(self, glucose_oxidase):
        wes = [oxidase_we("WE1", glucose_oxidase, area=0.23e-6)]
        chip = BioInterface.gold_chip("test", wes)
        cell = chip.as_cell(Chamber())
        assert cell.electrode_count == 3

    def test_layout_summary_mentions_probes(self, glucose_oxidase):
        wes = [oxidase_we("WE1", glucose_oxidase, area=0.23e-6)]
        chip = BioInterface.gold_chip("test", wes)
        text = chip.layout_summary()
        assert "WE1" in text
        assert "glucose" in text


class TestSensorArray:
    def _cell_factory(self, probe):
        def factory(chamber, row, col):
            we = oxidase_we(f"WE_{row}_{col}", probe)
            reference = Electrode(name=f"RE_{row}_{col}",
                                  role=ElectrodeRole.REFERENCE,
                                  material=get_material("silver"), area=7e-6)
            counter = Electrode(name=f"CE_{row}_{col}",
                                role=ElectrodeRole.COUNTER,
                                material=get_material("gold"), area=14e-6)
            return ElectrochemicalCell(chamber=chamber,
                                       working_electrodes=[we],
                                       reference=reference, counter=counter)
        return factory

    def test_shared_array_injection_reaches_all(self, glucose_oxidase):
        chamber = Chamber()
        array = SensorArray.shared(chamber,
                                   self._cell_factory(glucose_oxidase), 2, 2)
        assert array.n_cells == 4
        assert not array.has_isolated_chambers
        array.inject_at(0, 0, Injection(0.0, "glucose", 1.0))
        # Physically unavoidable: a shared chamber mixes everywhere.
        assert array.cell(1, 1).chamber.bulk("glucose") == 1.0

    def test_chambered_array_isolates(self, glucose_oxidase):
        array = SensorArray.chambered(
            self._cell_factory(glucose_oxidase), 2, 2)
        assert array.has_isolated_chambers
        array.inject_at(0, 0, Injection(0.0, "glucose", 1.0))
        assert array.cell(0, 0).chamber.bulk("glucose") == 1.0
        assert array.cell(1, 1).chamber.bulk("glucose") == 0.0

    def test_inject_everywhere(self, glucose_oxidase):
        array = SensorArray.chambered(
            self._cell_factory(glucose_oxidase), 2, 3)
        array.inject_everywhere(Injection(0.0, "glucose", 0.5))
        for cell in array.cells():
            assert cell.chamber.bulk("glucose") == 0.5

    def test_electrode_count(self, glucose_oxidase):
        # k x j array of 3-electrode sensors: 3*k*j pads (paper Sec. II).
        array = SensorArray.chambered(
            self._cell_factory(glucose_oxidase), 2, 3)
        assert array.electrode_count() == 18

    def test_out_of_range_index(self, glucose_oxidase):
        array = SensorArray.chambered(
            self._cell_factory(glucose_oxidase), 2, 2)
        with pytest.raises(SensorError):
            array.cell(2, 0)

    def test_ragged_rows_rejected(self, glucose_oxidase):
        factory = self._cell_factory(glucose_oxidase)
        c1 = factory(Chamber(name="a"), 0, 0)
        c2 = factory(Chamber(name="b"), 0, 1)
        c3 = factory(Chamber(name="c"), 1, 0)
        with pytest.raises(SensorError, match="equal length"):
            SensorArray([[c1, c2], [c3]])
