"""Cross-module property-based tests: invariants spanning layers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chem.analytic import diffusion_limited_current
from repro.chem.diffusion import CrankNicolsonDiffusion, Grid1D
from repro.chem.kinetics import MichaelisMentenFilm, steady_state_turnover_flux
from repro.chem.solution import Chamber
from repro.core.spec import design_from_dict, design_to_dict
from repro.data.catalog import build_oxidase, integrated_chain
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import with_oxidase
from repro.sensors.materials import get_material


class TestTransportCeiling:
    """No film, however loaded, can beat diffusion (the Table III ceiling)."""

    @given(st.floats(min_value=1e-8, max_value=1e-2),   # vmax
           st.floats(min_value=0.1, max_value=100.0),   # km
           st.floats(min_value=0.1, max_value=10.0))    # c_bulk
    @settings(max_examples=60)
    def test_flux_below_transport_limit(self, vmax, km, cb):
        m = 5.0e-6
        film = MichaelisMentenFilm(vmax=vmax, km=km)
        flux = steady_state_turnover_flux(cb, film, m)
        assert flux <= m * cb * (1.0 + 1e-9)

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30)
    def test_electrode_current_below_ceiling(self, cb):
        we = WorkingElectrode(
            electrode=Electrode(name="WE", role=ElectrodeRole.WORKING,
                                material=get_material("gold"), area=1e-6),
            functionalization=with_oxidase(build_oxidase("glucose")))
        chamber = Chamber()
        chamber.set_bulk("glucose", cb)
        i = we.steady_state_current(1.0, chamber)  # fully driven wave
        ceiling = diffusion_limited_current(
            2, we.area, cb, 6.7e-10, we.effective_nernst_layer())
        leak = we.electrode.leakage_current()
        assert i - leak <= ceiling * (1.0 + 1e-6)


class TestSolverGridIndependence:
    """Steady-state answers must not depend on discretisation details."""

    @given(st.integers(min_value=40, max_value=120),
           st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=10, deadline=None)
    def test_steady_flux_matches_analytic(self, n_nodes, dt):
        delta = 1.3e-4
        d = 6.7e-10
        film = MichaelisMentenFilm(vmax=2e-5, km=30.0)
        grid = Grid1D.uniform(delta, n_nodes)
        solver = CrankNicolsonDiffusion(grid, d, dt)
        c = np.full(n_nodes, 2.0)
        for _ in range(int(200.0 / dt)):
            c0 = float(c[0])
            rate = film.rate(c0)
            slope = film.vmax * film.km / (film.km + max(c0, 0.0)) ** 2
            c = solver.step_linear_surface(c, rate - slope * c0, slope)
        expected = steady_state_turnover_flux(2.0, film, d / delta)
        assert film.rate(float(c[0])) == pytest.approx(expected, rel=0.02)


class TestChainLinearity:
    """The chain must reconstruct mid-range currents linearly."""

    @given(st.floats(min_value=0.05e-6, max_value=0.8e-6),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_reconstruction_unbiased(self, current, seed):
        chain = integrated_chain("cyp_micro", n_channels=1, seed=5)
        mean, std = chain.measure_constant(
            current, duration=10.0, rng=np.random.default_rng(seed))
        # Unbiased within a few LSB-equivalents of combined noise.
        tolerance = 4.0 * max(std / math.sqrt(10.0 * 100.0),
                              chain.quantization_noise_rms())
        assert abs(mean - current) <= tolerance + 2e-10


design_payloads = st.fixed_dictionaries({
    "schema": st.just(1),
    "kind": st.just("design"),
    "name": st.text(alphabet="abcdef_0123456789", min_size=1, max_size=12),
    "assignments": st.just([
        {"we_name": "WE1", "family": "oxidase",
         "probe_name": "glucose_oxidase", "targets": ["glucose"]},
    ]),
    "structure": st.sampled_from(["shared_chamber", "chambered_array"]),
    "readout": st.sampled_from(["mux_shared", "per_we"]),
    "noise": st.sampled_from(["raw", "chopping"]),
    "nanostructure": st.sampled_from([None, "carbon_nanotubes"]),
    "we_area": st.floats(min_value=1e-8, max_value=1e-5),
    "scan_rate": st.floats(min_value=0.001, max_value=0.02),
})


class TestSpecRoundTrip:
    @given(design_payloads)
    @settings(max_examples=40)
    def test_dict_round_trip_is_identity(self, payload):
        design = design_from_dict(payload)
        again = design_from_dict(design_to_dict(design))
        assert again == design


class TestNoiseStrategyOrdering:
    """Strategies must never *worsen* the low-frequency noise."""

    @given(st.floats(min_value=1e-13, max_value=1e-9),
           st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=40)
    def test_chopping_never_hurts(self, white, corner):
        from repro.electronics.noise import ChoppingStrategy, NoiseModel
        model = NoiseModel(white_density=white, flicker_corner=corner,
                           drift_rate=1e-12)
        chopped = ChoppingStrategy(chop_frequency=corner * 100.0
                                   ).effective_noise(model)
        assert chopped.rms_in_band(0.01, 5.0) <= model.rms_in_band(
            0.01, 5.0) * (1.0 + 1e-9)

    @given(st.floats(min_value=1e-13, max_value=1e-9),
           st.floats(min_value=10.0, max_value=1000.0))
    @settings(max_examples=40)
    def test_cds_helps_when_flicker_dominates(self, white, corner):
        from repro.electronics.noise import CdsStrategy, NoiseModel
        model = NoiseModel(white_density=white, flicker_corner=corner)
        cds = CdsStrategy(correlation=0.95).effective_noise(model)
        # With a high corner, low-frequency rms improves despite the
        # sqrt(2) white-noise penalty.
        assert cds.rms_in_band(0.01, 1.0) < model.rms_in_band(0.01, 1.0)
