"""Shared fixtures: probes, cells, chains used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.enzymes import (
    CypSubstrateChannel,
    CytochromeP450,
    Oxidase,
    ProstheticGroup,
)
from repro.chem.kinetics import MichaelisMentenFilm
from repro.chem.redox import ButlerVolmerKinetics, OxidationEfficiency, RedoxCouple
from repro.chem.solution import Chamber
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import with_cytochrome, with_oxidase
from repro.sensors.materials import get_material


@pytest.fixture
def rng():
    """A deterministic generator; reseeded per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def glucose_oxidase():
    """A hand-built GOD probe with round-number kinetics."""
    return Oxidase(
        name="god_test", display_name="Glucose oxidase (test)",
        prosthetic_group=ProstheticGroup.FAD, substrate="glucose",
        film=MichaelisMentenFilm(vmax=2.0e-5, km=30.0),
        h2o2_wave=OxidationEfficiency(e_half=0.47))


@pytest.fixture
def cyp2b4_probe():
    """A hand-built CYP2B4-like probe with two channels (n=2)."""
    return CytochromeP450(
        name="cyp2b4_test", display_name="CYP2B4 (test)",
        prosthetic_group=ProstheticGroup.HEME,
        channels=(
            CypSubstrateChannel(
                "benzphetamine",
                ButlerVolmerKinetics(RedoxCouple("b", -0.250, 2), k0=1.2e-4),
                efficiency=0.05, km=10.0),
            CypSubstrateChannel(
                "aminopyrine",
                ButlerVolmerKinetics(RedoxCouple("a", -0.400, 2), k0=1.2e-4),
                efficiency=0.10, km=70.0),
        ))


def make_cell(working_electrodes, chamber=None):
    """A valid 3-electrode cell around the given WEs."""
    if chamber is None:
        chamber = Chamber(name="test")
    area = max(we.area for we in working_electrodes)
    reference = Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                          material=get_material("silver"), area=area)
    counter = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                        material=get_material("gold"), area=2.0 * area)
    return ElectrochemicalCell(chamber=chamber,
                               working_electrodes=list(working_electrodes),
                               reference=reference, counter=counter)


@pytest.fixture
def cell_factory():
    """The cell builder as a fixture (importable-free for test modules)."""
    return make_cell


@pytest.fixture
def glucose_cell(glucose_oxidase):
    """A macro screen-printed glucose cell with 2 mM glucose loaded."""
    we = WorkingElectrode(
        electrode=Electrode(name="WE1", role=ElectrodeRole.WORKING,
                            material=get_material("screen_printed_carbon"),
                            area=7.0e-6),
        functionalization=with_oxidase(glucose_oxidase))
    cell = make_cell([we])
    cell.chamber.set_bulk("glucose", 2.0)
    return cell


@pytest.fixture
def cyp_cell(cyp2b4_probe):
    """A rhodium-graphite CYP2B4 cell with both drugs loaded."""
    we = WorkingElectrode(
        electrode=Electrode(name="WE4", role=ElectrodeRole.WORKING,
                            material=get_material("rhodium_graphite"),
                            area=7.0e-6),
        functionalization=with_cytochrome(cyp2b4_probe))
    cell = make_cell([we])
    cell.chamber.set_bulk("benzphetamine", 0.8)
    cell.chamber.set_bulk("aminopyrine", 2.0)
    return cell
