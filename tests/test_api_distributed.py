"""Distributed execution: shard queue, claims, store-aware workers.

Pins the acceptance bar of the distributed backend:

- records re-merged from independent worker processes are
  **bit-identical** to the inline reference — plain, screening and
  partially-degraded streams alike (wall time and engine statistics
  excepted, as on every backend),
- claims are atomic: racing workers cannot both win a shard, and every
  job executes exactly once,
- a worker that crashes or wedges mid-shard is detected through its
  stalled claim heartbeat; the shard is reclaimed, republished under
  the retry budget, and finished by a surviving worker,
- store-aware workers short-circuit warm jobs cluster-wide: a second
  run of the same fleet performs **zero** engine solves,
- the storage-driver seam under ``RunStore`` is genuinely pluggable —
  an in-memory driver passes the same round-trip properties the local
  directory driver does,
- speculative sweep prefetch warms exactly the neighbouring grid
  points a widened re-sweep will ask for.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import api
from repro.api.distributed import (
    DistributedExecutor,
    _try_claim,
    default_store_root,
    ensure_queue,
    run_worker,
    sweep_prefetch_assays,
)
from repro.api.jobs import JobKey
from repro.api.resilience import FaultInjector, RetryPolicy
from repro.api.store import LocalDirDriver, RunStore, StorageDriver
from repro.errors import ExecutionError, SpecError
from repro.io.export import panel_result_to_payload

CA_DWELL = 2.0  # short dwell keeps the suite fast; physics unchanged


def small_fleet(cells: int = 3, seed: int = 60) -> api.FleetSpec:
    return api.FleetSpec.homogeneous(cells=cells, seed=seed,
                                     ca_dwell=CA_DWELL)


def assert_records_identical(ref, got):
    """Full bit-identity: provenance and every sample of the result."""
    assert ref.job_name == got.job_name
    assert ref.seed == got.seed
    assert ref.spec_hash == got.spec_hash
    assert ref.spec == got.spec
    assert (panel_result_to_payload(ref.result)
            == panel_result_to_payload(got.result))


def start_worker_thread(queue, idle_exit_s: float = 5.0,
                        **kwargs) -> threading.Thread:
    """An in-process worker — fine whenever no crash faults fly."""
    thread = threading.Thread(
        target=run_worker,
        kwargs=dict(queue=queue, idle_exit_s=idle_exit_s, **kwargs),
        daemon=True)
    thread.start()
    return thread


def start_worker_process(queue, idle_exit_s: float = 20.0):
    """A real ``repro worker`` subprocess — required for crash faults."""
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(src), env.get("PYTHONPATH")]))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--queue", str(queue), "--idle-exit-s", str(idle_exit_s)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    line = proc.stdout.readline()
    assert line.startswith("repro worker: ready "), line
    return proc


class TestClaimAtomicity:
    def test_exactly_one_racer_wins(self, tmp_path):
        claims = tmp_path / "claims"
        claims.mkdir()
        wins: list[int] = []
        barrier = threading.Barrier(8)

        def racer(k: int) -> None:
            barrier.wait()
            if _try_claim(claims, "task-000") is not None:
                wins.append(k)

        threads = [threading.Thread(target=racer, args=(k,))
                   for k in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        payload = json.loads((claims / "task-000.claim").read_text())
        assert payload["pid"] == os.getpid()

    def test_racing_workers_execute_every_job_once(self, tmp_path):
        queue = tmp_path / "q"
        spec = small_fleet(cells=4)
        executor = DistributedExecutor(queue=queue, workers=4)
        threads = [start_worker_thread(queue, max_shards=4)
                   for _ in range(3)]
        records = list(executor.run_fleet(spec))
        for thread in threads:
            thread.join(timeout=30)
        reference = list(api.InlineExecutor().run_fleet(spec))
        assert len(records) == len(reference) == 4
        for ref, got in zip(reference, records):
            assert_records_identical(ref, got)
        # The queue is clean after the stream completes.
        assert list((queue / "tasks").iterdir()) == []
        assert list((queue / "claims").iterdir()) == []
        assert list((queue / "results").iterdir()) == []


class TestBitIdentity:
    def test_single_worker_matches_inline(self, tmp_path):
        queue = tmp_path / "q"
        spec = small_fleet()
        executor = DistributedExecutor(queue=queue, workers=2)
        thread = start_worker_thread(queue)
        records = list(executor.run_fleet(spec))
        thread.join(timeout=30)
        for ref, got in zip(api.InlineExecutor().run_fleet(spec), records):
            assert_records_identical(ref, got)

    def test_screening_stream_matches_inline(self, tmp_path):
        queue = tmp_path / "q"
        spec = small_fleet()
        executor = DistributedExecutor(queue=queue, workers=2)
        thread = start_worker_thread(queue)
        got = list(api.iter_results(spec, backend=executor,
                                    screening=True))
        thread.join(timeout=30)
        ref = list(api.iter_results(spec, screening=True))
        assert len(got) == len(ref)
        for r, g in zip(ref, got):
            assert_records_identical(r, g)
        assert all(g.spec["screening"] for g in got)

    def test_partial_degradation_matches_supervised_semantics(
            self, tmp_path):
        queue = tmp_path / "q"
        spec = small_fleet(cells=3)
        executor = DistributedExecutor(
            queue=queue, workers=3,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            on_error="partial",
            faults=FaultInjector.parse("engine_error:5@cell01"))
        thread = start_worker_thread(queue)
        records = list(executor.run_fleet(spec))
        thread.join(timeout=30)
        assert len(records) == 3
        failed = [r for r in records if r.failed]
        assert len(failed) == 1
        assert failed[0].job_name == "cell01"
        assert failed[0].attempts == 2
        assert failed[0].error_type == "ExecutionError"
        assert "injected transient engine error" in failed[0].error
        reference = {r.job_name: r
                     for r in api.InlineExecutor().run_fleet(spec)}
        for record in records:
            if not record.failed:
                assert_records_identical(reference[record.job_name],
                                         record)
        last = records[-1]
        assert last.resilience is not None
        assert last.resilience.engine_errors == 2
        assert last.resilience.retries == 1
        assert last.resilience.failed_jobs == 1

    def test_exhausted_job_raises_by_default(self, tmp_path):
        queue = tmp_path / "q"
        spec = small_fleet(cells=2)
        executor = DistributedExecutor(
            queue=queue, workers=2,
            retry=RetryPolicy(max_attempts=1),
            faults=FaultInjector.parse("engine_error:5@cell00"))
        thread = start_worker_thread(queue)
        with pytest.raises(ExecutionError, match="cell00 failed after 1"):
            list(executor.run_fleet(spec))
        thread.join(timeout=30)


class TestStoreAwareWorkers:
    def test_warm_cluster_rerun_solves_nothing(self, tmp_path):
        queue = tmp_path / "q"
        spec = small_fleet()
        executor = DistributedExecutor(queue=queue, workers=2)
        thread = start_worker_thread(queue)
        cold = list(executor.run_fleet(spec))
        thread.join(timeout=30)
        assert not any(r.cached for r in cold)
        # A different worker, the same shared store: every job is warm.
        thread = start_worker_thread(queue)
        warm = list(executor.run_fleet(spec))
        thread.join(timeout=30)
        assert all(r.cached for r in warm)
        for ref, got in zip(cold, warm):
            assert_records_identical(ref, got)
        # The acceptance observable: a fully warm fleet performed zero
        # live engine solves.
        thread = start_worker_thread(queue)
        record = api.run(spec, backend=executor)
        thread.join(timeout=30)
        assert record.engine.n_solve_steps == 0

    def test_worker_writeback_counts_into_store_stats(self, tmp_path):
        queue = tmp_path / "q"
        thread = start_worker_thread(queue)
        executor = DistributedExecutor(queue=queue, workers=1)
        list(executor.run_fleet(small_fleet(cells=2)))
        thread.join(timeout=30)
        store = RunStore(default_store_root(queue))
        assert len(store) == 2
        assert store.stats().records == 2


class TestDeadWorkerReclaim:
    def test_crashed_worker_shard_is_reclaimed(self, tmp_path):
        queue = tmp_path / "q"
        ensure_queue(queue)
        spec = small_fleet(cells=2)
        executor = DistributedExecutor(
            queue=queue, workers=1,
            retry=RetryPolicy(max_attempts=3, timeout_s=2.0),
            faults=FaultInjector.parse("worker_crash:1"))
        victims = [start_worker_process(queue) for _ in range(2)]
        try:
            records = list(executor.run_fleet(spec))
        finally:
            for proc in victims:
                try:
                    proc.wait(timeout=30)
                finally:
                    proc.kill()
        assert sorted(proc.returncode for proc in victims).count(170) >= 1
        for ref, got in zip(api.InlineExecutor().run_fleet(spec), records):
            assert_records_identical(ref, got)
        stats = records[-1].resilience
        assert stats is not None
        assert stats.retries >= 1
        assert stats.worker_crashes + stats.worker_hangs >= 1

    def test_hung_worker_shard_is_reclaimed(self, tmp_path):
        queue = tmp_path / "q"
        ensure_queue(queue)
        spec = small_fleet(cells=2)
        executor = DistributedExecutor(
            queue=queue, workers=1,
            retry=RetryPolicy(max_attempts=3, timeout_s=1.0),
            faults=FaultInjector.parse("worker_hang:1"))
        # Threads suffice: an injected hang only sleeps, never exits.
        threads = [start_worker_thread(queue, idle_exit_s=8.0)
                   for _ in range(2)]
        records = list(executor.run_fleet(spec))
        for thread in threads:
            thread.join(timeout=30)
        for ref, got in zip(api.InlineExecutor().run_fleet(spec), records):
            assert_records_identical(ref, got)
        stats = records[-1].resilience
        assert stats is not None
        assert stats.retries >= 1
        assert stats.worker_hangs >= 1

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        queue = tmp_path / "q"
        spec = small_fleet(cells=1)
        executor = DistributedExecutor(
            queue=queue, workers=1,
            retry=RetryPolicy(max_attempts=1, timeout_s=0.5),
            faults=FaultInjector.parse("worker_hang:9"))
        thread = start_worker_thread(queue, idle_exit_s=6.0)
        with pytest.raises(ExecutionError, match="stalled or died"):
            list(executor.run_fleet(spec))
        thread.join(timeout=30)


class TestExecutorSurface:
    def test_distributed_backend_needs_queue(self):
        with pytest.raises(SpecError, match="queue"):
            api.ExecutionSpec(backend="distributed")

    def test_spec_block_round_trips_queue_and_prefetch(self):
        block = api.ExecutionSpec(backend="distributed", queue="qdir",
                                  prefetch=True, workers=2)
        payload = json.loads(json.dumps(block.to_dict()))
        back = api.ExecutionSpec.from_dict(payload)
        assert back == block
        assert payload["queue"] == "qdir"
        assert payload["prefetch"] is True

    def test_resolve_by_name(self, tmp_path):
        from repro.api.executors import resolve_executor

        spec = api.ExecutionSpec(backend="distributed",
                                 queue=str(tmp_path / "q"))
        executor = spec.build()
        assert isinstance(executor, DistributedExecutor)
        assert executor.name == "distributed"
        resolved = resolve_executor(executor, None)
        assert resolved is executor

    def test_repr_and_close(self, tmp_path):
        executor = DistributedExecutor(queue=tmp_path / "q")
        assert "DistributedExecutor" in repr(executor)
        executor.close()  # no persistent resources: must be a no-op


class _MemoryDriver(StorageDriver):
    """The full driver interface over dicts — pluggability proof."""

    def __init__(self) -> None:
        self.blobs: dict[str, str] = {}
        self.quarantined: dict[str, str] = {}
        self.index: str | None = None
        self.locked = False
        self.locked_at: float | None = None

    def read(self, key):
        return self.blobs.get(key)

    def write(self, key, text):
        self.blobs[key] = text
        return len(text.encode("utf-8"))

    def delete(self, key):
        self.blobs.pop(key, None)

    def size(self, key):
        text = self.blobs.get(key)
        return None if text is None else len(text.encode("utf-8"))

    def list(self):
        return sorted((key, len(text.encode("utf-8")))
                      for key, text in self.blobs.items())

    def quarantine(self, key):
        text = self.blobs.pop(key, None)
        if text is not None:
            self.quarantined[key] = text

    def read_index(self):
        return self.index

    def write_index(self, text):
        self.index = text

    def try_lock_index(self):
        if self.locked:
            return False
        self.locked = True
        self.locked_at = time.monotonic()
        return True

    def unlock_index(self):
        self.locked = False
        self.locked_at = None

    def index_lock_age_s(self):
        if self.locked_at is None:
            return None
        return time.monotonic() - self.locked_at


class TestStorageDriver:
    # Same shape as real keys: 64 hex chars (sha-256 digests).
    KEYS = [f"{i:02x}" * 32 for i in range(6)]

    def test_local_dir_round_trip_properties(self, tmp_path):
        driver = LocalDirDriver(tmp_path)
        for i, key in enumerate(self.KEYS):
            text = json.dumps({"k": key, "n": i}) + "\n"
            nbytes = driver.write(key, text)
            assert nbytes == len(text.encode("utf-8"))
            assert driver.read(key) == text
            assert driver.size(key) == nbytes
        listed = driver.list()
        assert listed == sorted(listed)
        assert [key for key, _ in listed] == sorted(self.KEYS)
        driver.delete(self.KEYS[0])
        assert driver.read(self.KEYS[0]) is None
        assert driver.size(self.KEYS[0]) is None
        driver.quarantine(self.KEYS[1])
        assert self.KEYS[1] not in [key for key, _ in driver.list()]
        assert driver.read(self.KEYS[1]) is None

    def test_local_dir_index_lock(self, tmp_path):
        driver = LocalDirDriver(tmp_path)
        assert driver.index_lock_age_s() is None
        assert driver.try_lock_index() is True
        assert driver.try_lock_index() is False
        assert driver.index_lock_age_s() is not None
        driver.unlock_index()
        assert driver.try_lock_index() is True
        driver.unlock_index()

    def test_memory_driver_round_trip_properties(self):
        driver = _MemoryDriver()
        for key in self.KEYS:
            driver.write(key, key + "\n")
        assert [key for key, _ in driver.list()] == sorted(self.KEYS)
        driver.quarantine(self.KEYS[0])
        assert driver.read(self.KEYS[0]) is None
        driver.delete(self.KEYS[1])
        assert driver.size(self.KEYS[1]) is None

    def test_run_store_works_on_memory_driver(self, tmp_path):
        store = RunStore(tmp_path / "mem", driver=_MemoryDriver())
        spec = api.AssaySpec(name="memo", seed=9,
                             protocol=api.PanelProtocolSpec(
                                 ca_dwell=CA_DWELL))
        record = api.run(spec, store=store)
        assert not record.cached
        warm = api.run(spec, store=store)
        assert warm.cached
        assert_records_identical(record, warm)
        assert store.stats().records >= 1
        # Nothing reached the directory tree: the driver is the only
        # persistence seam left under RunStore.
        assert not (tmp_path / "mem").exists() or not any(
            (tmp_path / "mem").rglob("*.json"))

    def test_base_class_is_abstract(self):
        driver = StorageDriver()
        for method, args in [("read", ("k",)), ("write", ("k", "v")),
                             ("delete", ("k",)), ("size", ("k",)),
                             ("list", ()), ("quarantine", ("k",)),
                             ("read_index", ()), ("write_index", ("v",)),
                             ("try_lock_index", ()), ("unlock_index", ()),
                             ("index_lock_age_s", ())]:
            with pytest.raises(NotImplementedError):
                getattr(driver, method)(*args)

    def test_contended_save_counts_lock_waits(self, tmp_path):
        store = RunStore(tmp_path / "s")
        other = LocalDirDriver(tmp_path / "s")
        assert other.try_lock_index()
        release = threading.Timer(0.3, other.unlock_index)
        release.start()
        spec = api.AssaySpec(name="contend", seed=3,
                             protocol=api.PanelProtocolSpec(
                                 ca_dwell=CA_DWELL))
        try:
            api.run(spec, store=store)
        finally:
            release.cancel()
            other.unlock_index()
        assert store.stats().lock_waits >= 1


class TestSweepPrefetch:
    def _sweep(self, values=(2.0, 4.0, 6.0)) -> api.SweepSpec:
        return api.SweepSpec(
            name="dwell-sweep",
            base=api.AssaySpec(name="pt", seed=11,
                               protocol=api.PanelProtocolSpec(
                                   ca_dwell=CA_DWELL)),
            grid={"protocol.ca_dwell": tuple(values)})

    def test_extrapolates_last_axis_one_step(self):
        sweep = self._sweep()
        extra = sweep_prefetch_assays(sweep)
        assert len(extra) == 1
        assert extra[0].protocol.ca_dwell == 8.0
        known = {JobKey.for_payload(a.to_dict()).digest
                 for a in sweep.compile().assays}
        assert JobKey.for_payload(extra[0].to_dict()).digest not in known

    def test_prefetched_point_is_exactly_the_widened_sweeps_next_job(
            self):
        sweep = self._sweep()
        wide = self._sweep(values=(2.0, 4.0, 6.0, 8.0))
        extra = sweep_prefetch_assays(sweep)
        wide_keys = {JobKey.for_payload(a.to_dict()).digest
                     for a in wide.compile().assays}
        assert JobKey.for_payload(extra[0].to_dict()).digest in wide_keys

    def test_unextendable_axes_yield_nothing(self):
        assert sweep_prefetch_assays(self._sweep(values=(5.0,))) == []
        assert sweep_prefetch_assays(api.SweepSpec(
            name="s", base=self._sweep().base,
            grid={"protocol.ca_dwell": (2.0, 2.0)})) == []

    def test_idle_workers_warm_the_next_grid_point(self, tmp_path):
        queue = tmp_path / "q"
        sweep = api.SweepSpec(
            name="dwell-sweep",
            base=api.AssaySpec(name="pt", seed=11,
                               protocol=api.PanelProtocolSpec(
                                   ca_dwell=CA_DWELL)),
            grid={"protocol.ca_dwell": (2.0, 3.0)},
            execution=api.ExecutionSpec(backend="distributed",
                                        queue=str(queue), workers=2,
                                        prefetch=True))
        thread = start_worker_thread(queue, idle_exit_s=4.0)
        record = api.run(sweep)
        thread.join(timeout=60)
        assert len(record.records) == 2
        store = RunStore(default_store_root(queue))
        extra = sweep_prefetch_assays(api.SweepSpec(
            name=sweep.name, base=sweep.base, grid=sweep.grid))
        assert len(extra) == 1
        key = JobKey.for_payload(extra[0].to_dict())
        assert store.get_job(key) is not None
