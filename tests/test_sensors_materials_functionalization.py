"""Electrode materials and functionalization stacks."""

from __future__ import annotations

import pytest

from repro.sensors.functionalization import (
    CARBON_NANOTUBES,
    EPOXY_STABILIZING,
    GOLD_NANOPARTICLES,
    POLYMER_PERMSELECTIVE,
    Functionalization,
    Membrane,
    Nanostructure,
    blank,
    with_cytochrome,
    with_oxidase,
)
from repro.sensors.materials import (
    ElectrodeMaterial,
    get_material,
    material_names,
    register_material,
)
from repro.errors import SensorError


class TestMaterials:
    def test_paper_materials_present(self):
        # Gold WE/CE, silver RE (Sec. III); rhodium-graphite from [16].
        for name in ("gold", "silver", "rhodium_graphite",
                     "screen_printed_carbon", "glassy_carbon", "platinum"):
            assert name in material_names()

    def test_only_silver_is_reference_suitable(self):
        assert get_material("silver").suitable_reference
        assert not get_material("gold").suitable_reference

    def test_platinum_catalyses_h2o2(self):
        # Negative shift = oxidation wave moves to lower potentials.
        assert get_material("platinum").h2o2_wave_shift < 0.0

    def test_screen_printed_is_cheapest(self):
        costs = {name: get_material(name).cost_per_mm2
                 for name in material_names()}
        assert min(costs, key=costs.get) == "screen_printed_carbon"

    def test_unknown_material_helpful_error(self):
        with pytest.raises(SensorError, match="gold"):
            get_material("unobtanium")

    def test_roughness_at_least_one(self):
        with pytest.raises(SensorError):
            ElectrodeMaterial(name="bad", display_name="Bad",
                              double_layer_capacitance=0.2, roughness=0.5)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SensorError, match="already"):
            register_material(get_material("gold"))


class TestNanostructure:
    def test_cnt_boosts_signal_and_lowers_overpotential(self):
        # The paper: nanostructuration "brings much larger signals".
        assert CARBON_NANOTUBES.signal_gain > 1.0
        assert CARBON_NANOTUBES.h2o2_wave_shift < 0.0

    def test_gain_must_be_positive(self):
        with pytest.raises(Exception):
            Nanostructure(name="bad", signal_gain=0.0)


class TestMembrane:
    def test_polymer_trades_signal_for_stability(self):
        assert POLYMER_PERMSELECTIVE.permeability < 1.0
        assert POLYMER_PERMSELECTIVE.drift_suppression > 0.0
        assert POLYMER_PERMSELECTIVE.range_extension > 1.0

    def test_epoxy_long_term(self):
        assert EPOXY_STABILIZING.drift_suppression >= 0.5

    def test_permeability_bounds(self):
        with pytest.raises(SensorError):
            Membrane(name="bad", permeability=0.0)
        with pytest.raises(SensorError):
            Membrane(name="bad", permeability=1.5)


class TestFunctionalization:
    def test_blank(self):
        f = blank()
        assert f.is_blank
        assert f.probe_family == "blank"
        assert f.targets() == ()
        assert f.signal_gain == 1.0
        assert f.permeability == 1.0

    def test_oxidase_stack(self, glucose_oxidase):
        f = with_oxidase(glucose_oxidase, nanostructure=CARBON_NANOTUBES,
                         membrane=POLYMER_PERMSELECTIVE)
        assert f.probe_family == "oxidase"
        assert f.targets() == ("glucose",)
        assert f.signal_gain == CARBON_NANOTUBES.signal_gain
        assert f.permeability == POLYMER_PERMSELECTIVE.permeability
        assert f.added_cost_per_mm2 > 0.0

    def test_cytochrome_stack(self, cyp2b4_probe):
        f = with_cytochrome(cyp2b4_probe)
        assert f.probe_family == "cytochrome"
        assert set(f.targets()) == {"benzphetamine", "aminopyrine"}

    def test_type_checking(self, glucose_oxidase, cyp2b4_probe):
        with pytest.raises(SensorError):
            with_oxidase(cyp2b4_probe)  # type: ignore[arg-type]
        with pytest.raises(SensorError):
            with_cytochrome(glucose_oxidase)  # type: ignore[arg-type]

    def test_with_membrane_copy(self, glucose_oxidase):
        f = with_oxidase(glucose_oxidase)
        f2 = f.with_membrane(EPOXY_STABILIZING)
        assert f.membrane is None
        assert f2.membrane is EPOXY_STABILIZING
        assert f2.probe is f.probe

    def test_gold_nanoparticles_milder_than_cnt(self):
        assert GOLD_NANOPARTICLES.signal_gain < CARBON_NANOTUBES.signal_gain
