"""Unit conversions: exactness, round trips, input validation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import UnitsError

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
positive = st.floats(min_value=1e-12, max_value=1e12,
                     allow_nan=False, allow_infinity=False)


class TestExactFactors:
    def test_millivolt(self):
        assert units.mv_to_v(650.0) == pytest.approx(0.650)
        assert units.v_to_mv(0.02) == pytest.approx(20.0)

    def test_microamp(self):
        assert units.ua_to_a(10.0) == pytest.approx(1.0e-5)
        assert units.a_to_ua(1.0e-5) == pytest.approx(10.0)

    def test_nanoamp(self):
        assert units.na_to_a(10.0) == pytest.approx(1.0e-8)
        assert units.a_to_na(1.0e-8) == pytest.approx(10.0)

    def test_millimolar_is_identity(self):
        # 1 mM == 1 mol/m^3 exactly; this is why concentrations are easy.
        assert units.mm_conc_to_si(2.5) == 2.5
        assert units.si_to_mm_conc(2.5) == 2.5

    def test_micromolar(self):
        assert units.um_conc_to_si(575.0) == pytest.approx(0.575)
        assert units.si_to_um_conc(0.575) == pytest.approx(575.0)

    def test_areas(self):
        assert units.mm2_to_m2(0.23) == pytest.approx(0.23e-6)
        assert units.cm2_to_m2(1.0) == pytest.approx(1.0e-4)
        assert units.m2_to_cm2(7.0e-6) == pytest.approx(0.07)

    def test_length(self):
        assert units.um_to_m(150.0) == pytest.approx(1.5e-4)
        assert units.m_to_um(1.5e-4) == pytest.approx(150.0)

    def test_scan_rate(self):
        assert units.mv_per_s_to_v_per_s(20.0) == pytest.approx(0.020)
        assert units.v_per_s_to_mv_per_s(0.020) == pytest.approx(20.0)

    def test_sensitivity_factor(self):
        # 1 uA/(mM*cm^2) = 1e-2 A*m/mol.
        assert units.sensitivity_to_si(1.0) == pytest.approx(1.0e-2)
        assert units.sensitivity_to_paper(1.0e-2) == pytest.approx(1.0)
        assert units.sensitivity_to_si(27.7) == pytest.approx(0.277)


class TestRoundTrips:
    @given(finite)
    def test_potential(self, x):
        assert units.v_to_mv(units.mv_to_v(x)) == pytest.approx(x, rel=1e-12, abs=1e-9)

    @given(finite)
    def test_current(self, x):
        assert units.a_to_ua(units.ua_to_a(x)) == pytest.approx(x, rel=1e-12, abs=1e-9)
        assert units.a_to_na(units.na_to_a(x)) == pytest.approx(x, rel=1e-12, abs=1e-9)

    @given(finite)
    def test_concentration(self, x):
        assert units.si_to_um_conc(units.um_conc_to_si(x)) == pytest.approx(
            x, rel=1e-12, abs=1e-9)

    @given(finite)
    def test_area(self, x):
        assert units.m2_to_mm2(units.mm2_to_m2(x)) == pytest.approx(x, rel=1e-12, abs=1e-9)
        assert units.m2_to_cm2(units.cm2_to_m2(x)) == pytest.approx(x, rel=1e-12, abs=1e-9)

    @given(finite)
    def test_sensitivity(self, x):
        back = units.sensitivity_to_paper(units.sensitivity_to_si(x))
        assert back == pytest.approx(x, rel=1e-12, abs=1e-9)


class TestValidation:
    def test_rejects_nan(self):
        with pytest.raises(UnitsError):
            units.mv_to_v(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(UnitsError):
            units.ua_to_a(float("inf"))

    def test_rejects_non_numeric(self):
        with pytest.raises(UnitsError):
            units.mv_to_v("a lot")  # type: ignore[arg-type]

    def test_ensure_positive(self):
        assert units.ensure_positive(3.0) == 3.0
        with pytest.raises(UnitsError):
            units.ensure_positive(0.0)
        with pytest.raises(UnitsError):
            units.ensure_positive(-1.0)

    def test_ensure_non_negative(self):
        assert units.ensure_non_negative(0.0) == 0.0
        with pytest.raises(UnitsError):
            units.ensure_non_negative(-1e-12)

    def test_ensure_fraction(self):
        assert units.ensure_fraction(0.5) == 0.5
        assert units.ensure_fraction(0.0) == 0.0
        assert units.ensure_fraction(1.0) == 1.0
        with pytest.raises(UnitsError):
            units.ensure_fraction(1.0001)

    def test_error_message_names_the_quantity(self):
        with pytest.raises(UnitsError, match="electrode area"):
            units.ensure_positive(-1.0, "electrode area")
