"""Trace and Voltammogram containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.measurement.trace import Trace, Voltammogram


def make_trace(values, fs=10.0):
    values = np.asarray(values, dtype=float)
    times = np.arange(values.size) / fs
    return Trace(times=times, current=values)


class TestTrace:
    def test_basic_properties(self):
        trace = make_trace(np.linspace(0.0, 1.0, 101))
        assert trace.n_samples == 101
        assert trace.sample_rate == pytest.approx(10.0)
        assert trace.duration == pytest.approx(10.0)

    def test_tail_mean_of_settled_signal(self):
        values = np.concatenate([np.linspace(0.0, 1.0, 50),
                                 np.full(50, 1.0)])
        trace = make_trace(values)
        assert trace.tail_mean(0.3) == pytest.approx(1.0)

    def test_window(self):
        trace = make_trace(np.arange(100.0))
        sub = trace.window(2.0, 4.0)
        assert sub.times[0] >= 2.0
        assert sub.times[-1] <= 4.0
        assert sub.n_samples == 21

    def test_window_validates(self):
        trace = make_trace(np.arange(100.0))
        with pytest.raises(AnalysisError):
            trace.window(4.0, 2.0)
        with pytest.raises(AnalysisError):
            trace.window(99.0, 99.01)

    def test_max_slope_locates_step(self):
        values = np.zeros(100)
        values[50:] = 1.0
        trace = make_trace(values)
        t, slope = trace.max_slope()
        assert t == pytest.approx(5.0, abs=0.2)
        assert slope > 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            Trace(times=np.arange(5.0), current=np.arange(4.0))

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            Trace(times=np.array([0.0]), current=np.array([0.0]))


class TestVoltammogram:
    def _cv(self, n_cycles=1):
        # Synthetic triangular sweep 0 -> -0.5 -> 0 per cycle.
        per_leg = 50
        legs = []
        signs = []
        for _ in range(n_cycles):
            legs.append(np.linspace(0.0, -0.5, per_leg))
            signs.append(np.full(per_leg, -1.0))
            legs.append(np.linspace(-0.5, 0.0, per_leg))
            signs.append(np.full(per_leg, +1.0))
        potentials = np.concatenate(legs)
        sweep_sign = np.concatenate(signs)
        times = np.arange(potentials.size) / 10.0
        current = -np.exp(-((potentials + 0.25) / 0.05) ** 2)  # a dip
        return Voltammogram(times=times, potentials=potentials,
                            current=current, sweep_sign=sweep_sign,
                            scan_rate=0.02)

    def test_leg_extraction(self):
        cv = self._cv()
        cathodic = cv.leg(cathodic=True)
        anodic = cv.leg(cathodic=False)
        assert np.all(cathodic.sweep_sign == -1.0)
        assert np.all(anodic.sweep_sign == +1.0)
        assert cathodic.n_samples + anodic.n_samples == cv.n_samples

    def test_cycle_indexing(self):
        cv = self._cv(n_cycles=3)
        leg0 = cv.leg(cathodic=True, cycle=0)
        leg2 = cv.leg(cathodic=True, cycle=2)
        assert leg0.times[0] < leg2.times[0]
        with pytest.raises(AnalysisError, match="cycle"):
            cv.leg(cathodic=True, cycle=3)

    def test_current_at_interpolates(self):
        cv = self._cv()
        # The synthetic dip bottoms out at -0.25 V.
        assert cv.current_at(-0.25) == pytest.approx(-1.0, rel=2e-2)
        assert abs(cv.current_at(0.0)) < 1e-5

    def test_scan_rate_positive(self):
        cv = self._cv()
        with pytest.raises(Exception):
            Voltammogram(times=cv.times, potentials=cv.potentials,
                         current=cv.current, sweep_sign=cv.sweep_sign,
                         scan_rate=0.0)
