"""Design representation, library, estimates, costs, rules."""

from __future__ import annotations

import pytest

from repro.core.architecture import (
    PlatformDesign,
    WeAssignment,
    design_from_choices,
)
from repro.core.costs import cost_of
from repro.core.estimates import estimate_design
from repro.core.library import ProbeOption, probe_options
from repro.core.rules import (
    check_design,
    rule_cds_validity,
    rule_peak_separation,
    rule_scan_rate,
)
from repro.core.targets import PanelSpec, TargetSpec, paper_panel_spec
from repro.errors import DesignError
from repro.sensors.electrode import PAPER_ELECTRODE_AREA


def paper_choices():
    panel = paper_panel_spec()
    choices = {}
    for target in panel.species_names():
        options = probe_options(target)
        # Prefer the cytochrome option for cholesterol (the paper panel).
        pick = options[0]
        for option in options:
            if target == "cholesterol" and option.family == "cytochrome":
                pick = option
        choices[target] = pick
    return panel, choices


def paper_design(**overrides):
    panel, choices = paper_choices()
    kwargs = dict(structure="shared_chamber", readout="mux_shared",
                  noise="raw", nanostructure="carbon_nanotubes",
                  we_area=PAPER_ELECTRODE_AREA, scan_rate=0.020)
    kwargs.update(overrides)
    return panel, design_from_choices(panel, choices, **kwargs)


class TestProbeOptions:
    def test_every_paper_target_has_probes(self):
        for target in ("glucose", "lactate", "glutamate", "benzphetamine",
                       "aminopyrine", "cholesterol"):
            assert probe_options(target)

    def test_cholesterol_has_two_probes(self):
        # Table I lists cholesterol oxidase, Table II CYP11A1.
        families = {o.family for o in probe_options("cholesterol")}
        assert families == {"oxidase", "cytochrome"}

    def test_unknown_target_rejected(self):
        with pytest.raises(DesignError):
            probe_options("caffeine" if False else "dopamine")

    def test_build_materialises(self):
        option = probe_options("glucose")[0]
        probe = option.build()
        assert probe.substrate == "glucose"


class TestDesignFromChoices:
    def test_cyp_targets_share_electrode(self):
        panel, design = paper_design()
        benz = design.assignment_for("benzphetamine")
        amino = design.assignment_for("aminopyrine")
        assert benz.we_name == amino.we_name  # CYP2B4 carries both

    def test_five_working_electrodes_like_fig4(self):
        panel, design = paper_design()
        assert design.n_working == 5

    def test_cds_appends_blank(self):
        panel, design = paper_design(noise="cds")
        assert design.n_working == 6
        assert design.has_blank()

    def test_shared_chamber_pad_count(self):
        panel, design = paper_design()
        # n + 2: five WEs sharing one RE/CE pair.
        assert design.electrode_count == 7

    def test_array_pays_per_chamber(self):
        panel, design = paper_design(structure="chambered_array")
        assert design.n_chambers == 5
        assert design.electrode_count == 15

    def test_missing_probe_rejected(self):
        panel, choices = paper_choices()
        del choices["glucose"]
        with pytest.raises(DesignError, match="glucose"):
            design_from_choices(panel, choices, structure="shared_chamber",
                                readout="mux_shared", noise="raw",
                                nanostructure=None,
                                we_area=PAPER_ELECTRODE_AREA,
                                scan_rate=0.02)

    def test_invalid_axis_values_rejected(self):
        with pytest.raises(DesignError):
            paper_design(structure="floating")
        with pytest.raises(DesignError):
            paper_design(readout="telepathy")
        with pytest.raises(DesignError):
            paper_design(noise="wishful")


class TestEstimates:
    def test_every_target_estimated(self):
        panel, design = paper_design()
        estimates = estimate_design(design, panel)
        assert set(estimates.per_target) == set(panel.species_names())

    def test_oxidase_targets_use_ca(self):
        panel, design = paper_design()
        estimates = estimate_design(design, panel)
        assert estimates.estimate("glucose").method == "chronoamperometry"
        assert estimates.estimate("aminopyrine").method == "cyclic_voltammetry"

    def test_mux_serialises_assay(self):
        panel, d_mux = paper_design(readout="mux_shared")
        panel, d_par = paper_design(readout="per_we")
        t_mux = estimate_design(d_mux, panel).assay_time
        t_par = estimate_design(d_par, panel).assay_time
        assert t_mux > t_par  # sharing costs throughput (paper Sec. II-A)

    def test_nano_improves_lod(self):
        panel, d_bare = paper_design(nanostructure=None)
        panel, d_cnt = paper_design(nanostructure="carbon_nanotubes")
        lod_bare = estimate_design(d_bare, panel).estimate("glucose").lod
        lod_cnt = estimate_design(d_cnt, panel).estimate("glucose").lod
        assert lod_cnt < lod_bare

    def test_larger_electrode_improves_lod(self):
        panel, d_small = paper_design(we_area=0.5 * PAPER_ELECTRODE_AREA)
        panel, d_big = paper_design(we_area=2.0 * PAPER_ELECTRODE_AREA)
        small = estimate_design(d_small, panel).estimate("benzphetamine").lod
        big = estimate_design(d_big, panel).estimate("benzphetamine").lod
        assert big < small


class TestCosts:
    def test_array_costs_more_than_shared(self):
        panel, d_shared = paper_design()
        panel, d_array = paper_design(structure="chambered_array")
        c_shared = cost_of(d_shared, estimate_design(d_shared, panel))
        c_array = cost_of(d_array, estimate_design(d_array, panel))
        assert c_array.fabrication_cost > c_shared.fabrication_cost
        assert c_array.die_area_mm2 > c_shared.die_area_mm2

    def test_per_we_readout_costs_power(self):
        panel, d_mux = paper_design()
        panel, d_par = paper_design(readout="per_we")
        p_mux = cost_of(d_mux, estimate_design(d_mux, panel)).power_w
        p_par = cost_of(d_par, estimate_design(d_par, panel)).power_w
        assert p_par > 3.0 * p_mux

    def test_cost_vector_positive(self):
        panel, design = paper_design()
        cost = cost_of(design, estimate_design(design, panel))
        for value in cost.as_tuple():
            assert value > 0.0


class TestRules:
    def test_paper_design_feasible(self):
        panel, design = paper_design()
        estimates = estimate_design(design, panel)
        cost = cost_of(design, estimates)
        violations = check_design(design, panel, estimates, cost)
        assert violations == ()

    def test_torsemide_diclofenac_unresolvable(self):
        # Table II: -19 and -41 mV — 22 mV apart, same isoform CYP2C9.
        panel = PanelSpec(
            name="cyp2c9",
            targets=(TargetSpec("torsemide", 0.1, 1.0),
                     TargetSpec("diclofenac", 0.1, 1.0)))
        choices = {t: probe_options(t)[0] for t in panel.species_names()}
        design = design_from_choices(
            panel, choices, structure="shared_chamber", readout="mux_shared",
            noise="raw", nanostructure=None, we_area=PAPER_ELECTRODE_AREA,
            scan_rate=0.02)
        estimates = estimate_design(design, panel)
        cost = cost_of(design, estimates)
        violations = rule_peak_separation(design, panel, estimates, cost)
        assert violations
        assert "22 mV" in violations[0]

    def test_fast_scan_rejected(self):
        panel, design = paper_design(scan_rate=0.1)
        estimates = estimate_design(design, panel)
        cost = cost_of(design, estimates)
        assert rule_scan_rate(design, panel, estimates, cost)

    def test_cds_with_direct_oxidizer_rejected(self):
        panel = PanelSpec(
            name="dopamine_panel",
            targets=(TargetSpec("glucose", 0.5, 4.0),
                     TargetSpec("dopamine", 0.01, 0.1)))
        # dopamine has no probe in the tables -> give it the oxidase rule
        # check directly with a hand-built design.
        glucose_option = probe_options("glucose")[0]
        design = PlatformDesign(
            name="d", assignments=(
                WeAssignment("WE1", glucose_option, ("glucose",)),
                WeAssignment("WE2", None, ()),
            ),
            structure="shared_chamber", readout="mux_shared", noise="cds",
            nanostructure=None, we_area=PAPER_ELECTRODE_AREA,
            scan_rate=0.02)
        violations = rule_cds_validity(design, panel, None, None)
        assert any("dopamine" in v for v in violations)

    def test_cds_without_blank_rejected(self):
        panel, design = paper_design()  # raw noise: no blank appended
        hacked = PlatformDesign(
            name="hack", assignments=design.assignments,
            structure=design.structure, readout=design.readout,
            noise="cds", nanostructure=design.nanostructure,
            we_area=design.we_area, scan_rate=design.scan_rate)
        violations = rule_cds_validity(hacked, panel, None, None)
        assert any("blank" in v for v in violations)
