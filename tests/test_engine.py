"""The batched simulation engine: factorization, batching, equivalence.

The engine's contract is that the batched path reproduces the scalar
reference path within 1e-12 relative (it is in fact built to match bit
for bit), so protocols could adopt it without moving any bench result.
These tests pin that contract at every layer: raw tridiagonal solves,
stacked Crank-Nicolson stepping (including mass conservation under
sealed boundaries), the redox-channel batch behind CV/DPV, and the
mechanism batch behind chronoamperometry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import constants as C
from repro.chem.diffusion import CrankNicolsonDiffusion, Grid1D, thomas_solve
from repro.chem.solution import InjectionSchedule
from repro.electronics.waveform import TriangleWaveform, uniform_sample_times
from repro.engine import (
    BatchCrankNicolson,
    MechanismBatch,
    RedoxChannelBatch,
    SimulationEngine,
    batch_thomas_solve,
    factor_tridiagonal,
    factor_tridiagonal_shared,
)
from repro.engine.tridiag import SMALL_BATCH
from repro.errors import SimulationError
from repro.measurement.chronoamperometry import Chronoamperometry
from repro.measurement.voltammetry import (
    CyclicVoltammetry,
    build_channel_simulators,
)


def random_dominant_system(rng, n):
    """A strictly diagonally dominant tridiagonal system."""
    lower = rng.uniform(-1.0, 1.0, n - 1)
    upper = rng.uniform(-1.0, 1.0, n - 1)
    diag = 2.5 + rng.uniform(0.0, 1.0, n)
    rhs = rng.uniform(-1.0, 1.0, n)
    return lower, diag, upper, rhs


class TestFactorization:
    def test_prefactored_solve_matches_thomas_bitwise(self):
        rng = np.random.default_rng(7)
        for n in (3, 7, 40, 121):
            lower, diag, upper, rhs = random_dominant_system(rng, n)
            expected = thomas_solve(lower, diag, upper, rhs)
            factor = factor_tridiagonal(lower, diag, upper)
            out = factor.solve(rhs)
            assert np.array_equal(out, expected)
            # The factorization is reusable: a second rhs, same matrix.
            rhs2 = rng.uniform(-1.0, 1.0, n)
            assert np.array_equal(factor.solve(rhs2),
                                  thomas_solve(lower, diag, upper, rhs2))

    @pytest.mark.parametrize("m", [2, SMALL_BATCH, SMALL_BATCH + 1, 12])
    def test_batched_solve_matches_scalar_per_system(self, m):
        # Covers both dispatch paths (Python-float and node-major numpy);
        # the contract is <= 1e-12 relative, the implementation is exact.
        rng = np.random.default_rng(m)
        n = 35
        lower = np.empty((m, n - 1))
        diag = np.empty((m, n))
        upper = np.empty((m, n - 1))
        rhs = np.empty((m, n))
        for j in range(m):
            lower[j], diag[j], upper[j], rhs[j] = random_dominant_system(
                rng, n)
        out = batch_thomas_solve(lower, diag, upper, rhs)
        for j in range(m):
            expected = thomas_solve(lower[j], diag[j], upper[j], rhs[j])
            np.testing.assert_allclose(out[j], expected, rtol=1e-12, atol=0.0)
            assert np.array_equal(out[j], expected)

    def test_tile_duplicates_the_batch(self):
        rng = np.random.default_rng(3)
        lower, diag, upper, rhs = random_dominant_system(rng, 9)
        tiled = factor_tridiagonal(lower, diag, upper).tile(3)
        assert tiled.batch_shape == (3,)
        out = tiled.solve(np.stack([rhs, 2.0 * rhs, rhs]))
        base = thomas_solve(lower, diag, upper, rhs)
        assert np.array_equal(out[0], base)
        assert np.array_equal(out[2], base)

    def test_zero_pivot_rejected(self):
        with pytest.raises(SimulationError, match="zero pivot"):
            factor_tridiagonal(np.zeros(2), np.zeros(3), np.zeros(2))

    def test_shape_mismatch_rejected(self):
        factor = factor_tridiagonal(np.zeros(2), np.ones(3), np.zeros(2))
        with pytest.raises(SimulationError, match="shape"):
            factor.solve(np.ones(4))
        with pytest.raises(SimulationError):
            factor_tridiagonal(np.zeros(3), np.ones(3), np.zeros(2))


class TestSharedFactorization:
    """Deduplicated eliminations: (grid, D, dt)-identical systems."""

    def _banded_batch(self, m, n, rng, duplicates):
        lower = np.empty((m, n - 1))
        diag = np.empty((m, n))
        upper = np.empty((m, n - 1))
        rhs = np.empty((m, n))
        for j in range(m):
            lower[j], diag[j], upper[j], rhs[j] = random_dominant_system(
                rng, n)
        for dst, src in duplicates:
            lower[dst], diag[dst], upper[dst] = lower[src], diag[src], upper[src]
        return lower, diag, upper, rhs

    @pytest.mark.parametrize("m", [3, SMALL_BATCH + 4])
    def test_duplicate_rows_solve_bitwise(self, m):
        rng = np.random.default_rng(m + 40)
        # Rows 1 and m-1 duplicate row 0's matrix (rhs stays distinct).
        lower, diag, upper, rhs = self._banded_batch(
            m, 23, rng, duplicates=[(1, 0), (m - 1, 0)])
        out = factor_tridiagonal_shared(lower, diag, upper).solve(rhs)
        for j in range(m):
            assert np.array_equal(
                out[j], thomas_solve(lower[j], diag[j], upper[j], rhs[j]))

    def test_all_unique_rows_unchanged(self):
        rng = np.random.default_rng(77)
        lower, diag, upper, rhs = self._banded_batch(6, 17, rng, [])
        shared = factor_tridiagonal_shared(lower, diag, upper).solve(rhs)
        direct = factor_tridiagonal(lower, diag, upper).solve(rhs)
        assert np.array_equal(shared, direct)

    def test_one_dimensional_delegates(self):
        rng = np.random.default_rng(5)
        lower, diag, upper, rhs = random_dominant_system(rng, 12)
        out = factor_tridiagonal_shared(lower, diag, upper).solve(rhs)
        assert np.array_equal(out, thomas_solve(lower, diag, upper, rhs))

    def test_crank_nicolson_steppers_share_one_factorization(self):
        grid = Grid1D.uniform(5.0e-4, 40)
        st1 = CrankNicolsonDiffusion(grid, 6.7e-10, 0.1)
        st2 = CrankNicolsonDiffusion(Grid1D.uniform(5.0e-4, 40), 6.7e-10, 0.1)
        assert st1._implicit_factor is st2._implicit_factor
        # A different dt / diffusivity must not share.
        st3 = CrankNicolsonDiffusion(grid, 6.7e-10, 0.2)
        st4 = CrankNicolsonDiffusion(grid, 1.0e-9, 0.1)
        assert st3._implicit_factor is not st1._implicit_factor
        assert st4._implicit_factor is not st1._implicit_factor
        # Shared or not, the stepping arithmetic is untouched.
        c = np.linspace(1.0, 2.0, 40)
        assert np.array_equal(st1.step(c, 1.0e-8), st2.step(c, 1.0e-8))


def make_steppers(boundary="dirichlet", n_systems=3):
    """Steppers with deliberately different grids and diffusivities.

    ``n_systems`` above :data:`SMALL_BATCH` exercises the vectorised
    solve dispatch instead of the Python-float one.
    """
    dt = 0.05
    specs = [(6.7e-10, Grid1D.expanding(1.0e-6, 8.0e-4, growth=1.10)),
             (2.0e-10, Grid1D.expanding(8.0e-7, 5.0e-4, growth=1.08)),
             (1.1e-9, Grid1D.uniform(6.0e-4, 45))]
    while len(specs) < n_systems:
        d = 1.0e-10 * (len(specs) + 2)
        specs.append((d, Grid1D.uniform(4.0e-4, 30 + 3 * len(specs))))
    return [CrankNicolsonDiffusion(grid, d, dt, bulk_boundary=boundary)
            for d, grid in specs[:n_systems]]


class TestBatchCrankNicolson:
    # Both solver dispatch paths: 3 systems run the Python-float
    # sweeps, SMALL_BATCH + 3 the node-major vectorised sweeps.
    @pytest.mark.parametrize("n_systems", [3, SMALL_BATCH + 3])
    def test_batched_step_matches_scalar_steppers(self, n_systems):
        steppers = make_steppers(n_systems=n_systems)
        batch = BatchCrankNicolson(steppers)
        fields = [np.linspace(1.0, 2.0, st.grid.n_nodes) for st in steppers]
        state = batch.stack_states(fields)
        flux = 1.0e-8 * np.linspace(-0.5, 2.0, n_systems)
        for _ in range(50):
            state = batch.step(state, flux)
            fields = [st.step(c, float(f))
                      for st, c, f in zip(steppers, fields, flux)]
        for j, st in enumerate(steppers):
            assert np.array_equal(state[j, :st.grid.n_nodes], fields[j])
            # Padding stays decoupled and identically zero.
            assert np.all(state[j, st.grid.n_nodes:] == 0.0)

    @pytest.mark.parametrize("n_systems", [3, SMALL_BATCH + 3])
    def test_batched_linear_surface_matches_scalar(self, n_systems):
        steppers = make_steppers(n_systems=n_systems)
        batch = BatchCrankNicolson(steppers)
        fields = [np.full(st.grid.n_nodes, 2.0) for st in steppers]
        state = batch.stack_states(fields)
        a = 1.0e-7 * np.linspace(0.0, 1.0, n_systems)
        b = 1.0e-4 * np.linspace(0.0, 2.0, n_systems)
        for _ in range(40):
            state = batch.step_linear_surface(state, a, b)
            fields = [st.step_linear_surface(c, float(ai), float(bi))
                      for st, c, ai, bi in zip(steppers, fields, a, b)]
        for j, st in enumerate(steppers):
            assert np.array_equal(state[j, :st.grid.n_nodes], fields[j])

    def test_mass_conserved_under_batch_stepping_sealed(self):
        # Sealed boundaries (noflux bulk, zero surface flux): the batch
        # must conserve each system's mass to solver precision.
        steppers = make_steppers(boundary="noflux")
        batch = BatchCrankNicolson(steppers)
        rng = np.random.default_rng(11)
        fields = [1.0 + rng.uniform(0.0, 1.0, st.grid.n_nodes)
                  for st in steppers]
        state = batch.stack_states(fields)
        initial = batch.total_mass(state)
        for _ in range(200):
            state = batch.step(state)
        final = batch.total_mass(state)
        np.testing.assert_allclose(final, initial, rtol=1e-12)

    def test_mixed_dt_rejected(self):
        grid = Grid1D.uniform(1.0e-4, 12)
        st1 = CrankNicolsonDiffusion(grid, 1.0e-9, 0.1)
        st2 = CrankNicolsonDiffusion(grid, 1.0e-9, 0.2)
        with pytest.raises(SimulationError, match="share one time step"):
            BatchCrankNicolson([st1, st2])

    def test_stack_states_shape_mismatch_rejected(self):
        # The vectorised packer must keep the scalar path's validation:
        # wrong profile count and wrong per-system node counts both fail
        # loudly, naming the first offending system.
        steppers = make_steppers()
        batch = BatchCrankNicolson(steppers)
        fields = [np.zeros(st.grid.n_nodes) for st in steppers]
        with pytest.raises(SimulationError, match="profiles for"):
            batch.stack_states(fields[:-1])
        fields[1] = np.zeros(fields[1].size + 1)
        with pytest.raises(SimulationError, match="nodes, grid has"):
            batch.stack_states(fields)

    def test_profile_length_checked(self):
        batch = BatchCrankNicolson(make_steppers())
        with pytest.raises(SimulationError, match="nodes"):
            batch.stack_states([np.ones(3)] * 3)


def make_panel_channel_sims(n_channels=8, dt=0.1, duration=70.0):
    """An n-channel CYP workload (the bench's panel shape): 2n fields,
    enough stacked systems to exercise the vectorised solve path."""
    from repro.chem.enzymes import (CypSubstrateChannel, CytochromeP450,
                                    ProstheticGroup)
    from repro.chem.redox import ButlerVolmerKinetics, RedoxCouple
    from repro.chem.solution import Chamber
    from repro.sensors.electrode import (Electrode, ElectrodeRole,
                                         WorkingElectrode)
    from repro.sensors.functionalization import with_cytochrome
    from repro.sensors.materials import get_material

    substrates = ("benzphetamine", "aminopyrine", "bupropion", "clozapine",
                  "cyclophosphamide", "diclofenac", "erythromycin",
                  "etoposide")[:n_channels]
    channels = tuple(
        CypSubstrateChannel(
            s, ButlerVolmerKinetics(RedoxCouple(s, -0.15 - 0.05 * k, 2),
                                    k0=1.2e-4),
            efficiency=0.08, km=20.0)
        for k, s in enumerate(substrates))
    probe = CytochromeP450(name="panel_test", display_name="panel test",
                           prosthetic_group=ProstheticGroup.HEME,
                           channels=channels)
    we = WorkingElectrode(
        electrode=Electrode(name="WEp", role=ElectrodeRole.WORKING,
                            material=get_material("rhodium_graphite"),
                            area=7.0e-6),
        functionalization=with_cytochrome(probe))
    chamber = Chamber(name="panel_test")
    for s in substrates:
        chamber.set_bulk(s, 1.0)
    return build_channel_simulators(we, chamber, dt, duration)


class TestRedoxChannelBatch:
    def _sims(self, cyp_cell, dt=0.1, duration=70.0):
        we = cyp_cell.working_electrode("WE4")
        return build_channel_simulators(we, cyp_cell.chamber, dt, duration)

    def test_eight_channel_batch_matches_scalar(self):
        # 16 stacked systems: the node-major vectorised dispatch, the
        # same shape the bench's acceptance criterion runs on.
        scalar = make_panel_channel_sims()
        batched = RedoxChannelBatch(make_panel_channel_sims())
        assert 2 * batched.batch_size > SMALL_BATCH
        for e in np.linspace(0.0, -0.7, 200):
            fluxes = batched.step(float(e))
            expected = np.asarray([sim.step(float(e)) for sim in scalar])
            assert np.array_equal(fluxes, expected)

    def test_fluxes_match_scalar_simulators(self, cyp_cell):
        scalar = self._sims(cyp_cell)
        batched = RedoxChannelBatch(self._sims(cyp_cell))
        potentials = np.linspace(0.0, -0.7, 300)
        for e in potentials:
            fluxes = batched.step(float(e))
            expected = [sim.step(float(e)) for sim in scalar]
            assert np.array_equal(fluxes, np.asarray(expected))

    def test_sync_back_restores_profiles(self, cyp_cell):
        scalar = self._sims(cyp_cell)
        batched = RedoxChannelBatch(self._sims(cyp_cell))
        for e in np.linspace(0.0, -0.5, 40):
            batched.step(float(e))
            for sim in scalar:
                sim.step(float(e))
        batched.sync_back()
        for ref, mirrored in zip(scalar, batched.channels):
            assert np.array_equal(mirrored.c_ox, ref.c_ox)
            assert np.array_equal(mirrored.c_red, ref.c_red)

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            RedoxChannelBatch([])


class TestProtocolEquivalence:
    """The acceptance bar: batched protocols vs the scalar reference."""

    def test_cv_currents_match_scalar_path(self, cyp_cell):
        # The bench scenario of TestCyclicVoltammetry / bench_table2.
        wf = TriangleWaveform(e_start=0.0, e_vertex=-0.7, scan_rate=0.02)
        cv = CyclicVoltammetry(wf, sample_rate=10.0)
        times, potentials, sweep_sign, currents = cv.simulate_true_current(
            cyp_cell, "WE4")

        # Scalar reference: the seed's per-channel inner loop.
        we = cyp_cell.working_electrode("WE4")
        dt = 1.0 / cv.sample_rate
        sims = build_channel_simulators(we, cyp_cell.chamber, dt,
                                        wf.duration)
        expected = np.empty(times.size)
        for k in range(times.size):
            e = float(potentials[k])
            faradaic = 0.0
            for sim in sims:
                faradaic -= sim.n * C.FARADAY * we.area * sim.step(e)
            expected[k] = (faradaic
                           + cv._quasi_static_current(cyp_cell, we, e)
                           + we.electrode.charging_current(
                               float(wf.rate(times[k]))))
        scale = np.max(np.abs(expected))
        assert np.max(np.abs(currents - expected)) <= 1e-12 * scale

    def test_chronoamperometry_matches_scalar_path(self, glucose_cell):
        glucose_cell.chamber.set_bulk("dopamine", 0.3)
        proto = Chronoamperometry(
            e_setpoint=0.55, duration=40.0, sample_rate=5.0,
            injections=InjectionSchedule.single(10.0, "glucose", 1.0))
        times, currents = proto.simulate_true_current(glucose_cell, "WE1")

        # Scalar reference: the seed's one-mechanism-at-a-time loop.
        e = proto.e_setpoint
        we = glucose_cell.working_electrode("WE1")
        chamber = glucose_cell.chamber.copy()
        dt = 1.0 / proto.sample_rate
        ref_times = uniform_sample_times(proto.duration, proto.sample_rate)
        mechanisms = proto._build_mechanisms(we, chamber, e, dt)
        expected = np.empty(ref_times.size)
        static = proto._static_current(glucose_cell, "WE1", e)
        expected[0] = static + proto._instant_current(we, mechanisms)
        t_prev = 0.0
        for k in range(1, ref_times.size):
            t_now = float(ref_times[k])
            for inj in proto.injections.events_between(t_prev, t_now):
                chamber.inject(inj)
                proto._apply_injection(mechanisms, we, chamber, e, dt)
            total = static
            for mech in mechanisms.values():
                total += mech.current(we.area, mech.step())
            expected[k] = total
            t_prev = t_now

        assert np.array_equal(times, ref_times)
        scale = np.max(np.abs(expected))
        assert np.max(np.abs(currents - expected)) <= 1e-12 * scale


class TestMechanismBatch:
    def test_requires_known_mechanism_kind(self):
        class Unknown:
            solver = None
            field = None

        with pytest.raises(SimulationError, match="mechanisms must expose"):
            MechanismBatch([Unknown()])

    def test_batch_size_and_engine_facade(self, glucose_cell):
        proto = Chronoamperometry(e_setpoint=0.55, duration=10.0,
                                  sample_rate=5.0)
        we = glucose_cell.working_electrode("WE1")
        mechanisms = proto._build_mechanisms(
            we, glucose_cell.chamber.copy(), 0.55, 0.2)
        engine = SimulationEngine.for_mechanisms(mechanisms)
        assert engine.batch_size == len(mechanisms)
        fluxes = engine.step()
        assert fluxes.shape == (len(mechanisms),)


class TestSimulationEngineFacade:
    def test_run_sweep_matches_stepwise(self, cyp_cell):
        we = cyp_cell.working_electrode("WE4")
        potentials = np.linspace(0.0, -0.6, 50)
        sims_a = build_channel_simulators(we, cyp_cell.chamber, 0.1, 60.0)
        sims_b = build_channel_simulators(we, cyp_cell.chamber, 0.1, 60.0)
        engine_a = SimulationEngine.for_redox_channels(sims_a)
        engine_b = SimulationEngine.for_redox_channels(sims_b)
        swept = engine_a.run_sweep(potentials)
        assert swept.shape == (potentials.size, engine_a.batch_size)
        stepped = np.vstack([engine_b.step(float(e)) for e in potentials])
        assert np.array_equal(swept, stepped)
