"""Enzyme probes: oxidases and cytochromes P450."""

from __future__ import annotations

import math

import pytest

from repro.chem.enzymes import (
    CypSubstrateChannel,
    CytochromeP450,
    Oxidase,
    ProstheticGroup,
)
from repro.chem.kinetics import MichaelisMentenFilm
from repro.chem.redox import ButlerVolmerKinetics, OxidationEfficiency, RedoxCouple
from repro.errors import ChemistryError


def make_channel(substrate, e_formal, n=2, efficiency=0.1, km=10.0):
    return CypSubstrateChannel(
        substrate, ButlerVolmerKinetics(RedoxCouple(substrate, e_formal, n)),
        efficiency=efficiency, km=km)


class TestOxidase:
    def test_construction(self, glucose_oxidase):
        assert glucose_oxidase.substrate == "glucose"
        assert glucose_oxidase.prosthetic_group is ProstheticGroup.FAD
        assert glucose_oxidase.substrate_species.name == "glucose"

    def test_heme_rejected(self):
        with pytest.raises(ChemistryError, match="heme"):
            Oxidase(name="bad", display_name="Bad",
                    prosthetic_group=ProstheticGroup.HEME,
                    substrate="glucose")

    def test_unknown_substrate_rejected(self):
        with pytest.raises(Exception):
            Oxidase(name="bad", display_name="Bad",
                    prosthetic_group=ProstheticGroup.FAD,
                    substrate="unobtainium")

    def test_turnover_flux_is_film_rate(self, glucose_oxidase):
        assert glucose_oxidase.turnover_flux(30.0) == pytest.approx(
            glucose_oxidase.film.rate(30.0))

    def test_faradaic_yield_at_saturation(self, glucose_oxidase):
        # Far above the wave: 2 electrons per substrate (reaction 3).
        assert glucose_oxidase.faradaic_yield(1.5) == pytest.approx(2.0,
                                                                    abs=1e-5)

    def test_recommended_potential_is_95_percent_point(self, glucose_oxidase):
        e = glucose_oxidase.recommended_potential()
        assert glucose_oxidase.collection_efficiency(e) == pytest.approx(
            0.95, rel=1e-6)

    def test_with_film_replaces_kinetics(self, glucose_oxidase):
        film = MichaelisMentenFilm(vmax=1e-4, km=5.0)
        boosted = glucose_oxidase.with_film(film)
        assert boosted.film is film
        assert boosted.substrate == glucose_oxidase.substrate


class TestCytochrome:
    def test_construction(self, cyp2b4_probe):
        assert cyp2b4_probe.substrates == ("benzphetamine", "aminopyrine")
        assert cyp2b4_probe.prosthetic_group is ProstheticGroup.HEME

    def test_needs_heme(self):
        with pytest.raises(ChemistryError, match="heme"):
            CytochromeP450(name="bad", display_name="Bad",
                           prosthetic_group=ProstheticGroup.FAD,
                           channels=(make_channel("clozapine", -0.265),))

    def test_needs_channels(self):
        with pytest.raises(ChemistryError, match="channel"):
            CytochromeP450(name="bad", display_name="Bad",
                           prosthetic_group=ProstheticGroup.HEME)

    def test_duplicate_substrate_rejected(self):
        with pytest.raises(ChemistryError, match="twice"):
            CytochromeP450(
                name="bad", display_name="Bad",
                prosthetic_group=ProstheticGroup.HEME,
                channels=(make_channel("clozapine", -0.265),
                          make_channel("clozapine", -0.3)))

    def test_channel_lookup(self, cyp2b4_probe):
        ch = cyp2b4_probe.channel_for("benzphetamine")
        assert ch.reduction_potential == pytest.approx(-0.250)
        with pytest.raises(ChemistryError, match="does not sense"):
            cyp2b4_probe.channel_for("glucose")

    def test_peak_separation(self, cyp2b4_probe):
        # benzphetamine at -250 mV, aminopyrine at -400 mV: 150 mV gap.
        assert cyp2b4_probe.peak_separation() == pytest.approx(0.150)

    def test_single_channel_infinite_separation(self):
        probe = CytochromeP450(
            name="cyp1a2", display_name="CYP1A2",
            prosthetic_group=ProstheticGroup.HEME,
            channels=(make_channel("clozapine", -0.265),))
        assert math.isinf(probe.peak_separation())

    def test_couples_exposed(self, cyp2b4_probe):
        couples = cyp2b4_probe.couples()
        assert len(couples) == 2
        assert couples[0].e_formal == pytest.approx(-0.250)


class TestChannelValidation:
    def test_efficiency_bounds(self):
        with pytest.raises(ChemistryError):
            make_channel("clozapine", -0.265, efficiency=0.0)
        with pytest.raises(ChemistryError):
            make_channel("clozapine", -0.265, efficiency=2.5)

    def test_porous_film_preconcentration_allowed(self):
        # Efficiencies slightly above 1 model CNT thin-layer trapping.
        ch = make_channel("cholesterol", -0.400, efficiency=1.1)
        assert ch.efficiency == pytest.approx(1.1)

    def test_km_positive(self):
        with pytest.raises(Exception):
            make_channel("clozapine", -0.265, km=0.0)
