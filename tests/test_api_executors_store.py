"""Execution backends, the run store, and sweep specs.

Pins the acceptance bar of the backend/store redesign:

- ``ProcessExecutor`` fleet results are bit-identical to
  ``InlineExecutor`` (names, seeds, hashes, every sample),
- a repeated ``run(spec, store=...)`` returns the stored record
  (``cached=True``) without invoking the engine,
- ``SweepSpec`` compiles its grid deterministically and round-trips
  through JSON like every other spec kind,
- the declarative ``execution`` block and the programmatic
  ``backend=`` argument select the same executors,
- shard partitioning covers every job exactly once.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.api.executors import shard_indices
from repro.errors import SpecError, StoreError

CA_DWELL = 6.0  # short dwell keeps the suite fast; physics unchanged


def small_fleet(cells: int = 3, seed: int = 40,
                execution: api.ExecutionSpec | None = None) -> api.FleetSpec:
    return api.FleetSpec.homogeneous(cells=cells, seed=seed,
                                     ca_dwell=CA_DWELL,
                                     execution=execution)


def assert_records_identical(ref, got):
    assert ref.job_name == got.job_name
    assert ref.seed == got.seed
    assert ref.spec_hash == got.spec_hash
    assert ref.spec == got.spec
    assert set(ref.result.traces) == set(got.result.traces)
    for name in ref.result.traces:
        assert np.array_equal(ref.result.traces[name].current,
                              got.result.traces[name].current)
        assert np.array_equal(ref.result.traces[name].true_current,
                              got.result.traces[name].true_current)
    for name in ref.result.voltammograms:
        assert np.array_equal(ref.result.voltammograms[name].current,
                              got.result.voltammograms[name].current)
    for target in ref.result.readouts:
        assert (ref.result.readouts[target].signal
                == got.result.readouts[target].signal)
    assert ref.result.assay_time == got.result.assay_time


class TestProcessBackendParity:
    """The acceptance bar: process == inline, bit for bit."""

    @pytest.mark.parametrize("shard", ["interleave", "contiguous"])
    def test_process_matches_inline(self, shard):
        spec = small_fleet(cells=3)
        inline = list(api.iter_results(spec, backend=api.InlineExecutor()))
        sharded = list(api.iter_results(
            spec, backend=api.ProcessExecutor(workers=2, shard=shard)))
        assert len(inline) == len(sharded) == 3
        for ref, got in zip(inline, sharded):
            assert_records_identical(ref, got)

    def test_process_run_collects_same_fleet_record(self):
        spec = small_fleet(cells=2, seed=60)
        ref = api.run(spec)
        got = api.run(spec, backend=api.ProcessExecutor(workers=2))
        assert got.spec_hash == ref.spec_hash
        assert got.names == ref.names
        assert got.seeds == ref.seeds == (60, 61)
        for a, b in zip(ref.records, got.records):
            assert_records_identical(a, b)
        # Fleet totals agree even though per-worker grouping differs.
        assert got.engine.n_fused_dwells == ref.engine.n_fused_dwells

    def test_more_workers_than_jobs(self):
        spec = small_fleet(cells=2, seed=70)
        records = list(api.iter_results(
            spec, backend=api.ProcessExecutor(workers=8)))
        assert [r.job_name for r in records] == ["cell00", "cell01"]

    def test_declarative_execution_block_selects_backend(self):
        spec = small_fleet(
            cells=2, seed=75,
            execution=api.ExecutionSpec(backend="process", workers=2))
        ref = list(api.iter_results(
            small_fleet(cells=2, seed=75), backend=api.InlineExecutor()))
        got = list(api.iter_results(spec))  # backend from the spec block
        for a, b in zip(ref, got):
            assert_records_identical(a, b)

    def test_assay_through_backend(self):
        assay = api.AssaySpec(name="solo", seed=5,
                              chain=api.ChainSpec(seed=5),
                              protocol=api.PanelProtocolSpec(
                                  ca_dwell=CA_DWELL))
        ref = api.run(assay)
        got = api.run(assay, backend="process")
        assert got.spec_hash == ref.spec_hash
        assert_records_identical(ref, got)


class TestExecutorResolution:
    def test_resolve_default_is_inline(self):
        assert isinstance(api.resolve_executor(None), api.InlineExecutor)

    def test_resolve_by_name_uses_block_workers(self):
        executor = api.resolve_executor(
            "process", api.ExecutionSpec(workers=3, shard="contiguous"))
        assert isinstance(executor, api.ProcessExecutor)
        assert executor.workers == 3
        assert executor.shard == "contiguous"

    def test_resolve_instance_passes_through(self):
        backend = api.ProcessExecutor(workers=2)
        assert api.resolve_executor(backend) is backend

    def test_resolve_rejects_unknown_name_and_type(self):
        with pytest.raises(SpecError, match="unknown execution backend"):
            api.resolve_executor("threads")
        with pytest.raises(SpecError, match="not an execution backend"):
            api.resolve_executor(object())

    def test_custom_executor_protocol_is_structural(self):
        class Recording:
            def __init__(self):
                self.calls = 0

            def run_fleet(self, spec):
                self.calls += 1
                yield from api.InlineExecutor().run_fleet(spec)

        backend = Recording()
        records = list(api.iter_results(small_fleet(cells=1),
                                        backend=backend))
        assert backend.calls == 1 and len(records) == 1

    def test_backend_rejected_for_non_fleet_kinds(self):
        with pytest.raises(SpecError, match="backends apply to"):
            api.run(api.CalibrationSpec(target="glucose"),
                    backend="process")

    def test_execution_spec_validation(self):
        with pytest.raises(SpecError, match="unknown backend"):
            api.ExecutionSpec(backend="threads")
        with pytest.raises(SpecError, match="shard"):
            api.ExecutionSpec(shard="random")
        with pytest.raises(SpecError, match="workers"):
            api.ExecutionSpec(workers=0)
        with pytest.raises(SpecError, match="workers"):
            api.ProcessExecutor(workers=0)
        with pytest.raises(SpecError, match="shard"):
            api.ProcessExecutor(shard="random")

    def test_execution_file_errors_name_the_path(self):
        payload = api.FleetSpec.homogeneous(cells=1).to_dict()
        payload["execution"] = {"backend": "threads"}
        with pytest.raises(SpecError, match=r"execution\.backend.*threads"):
            api.spec_from_dict(payload)
        payload["execution"] = {"shard": "zigzag"}
        with pytest.raises(SpecError, match=r"execution\.shard.*zigzag"):
            api.spec_from_dict(payload)


class TestShardIndices:
    @pytest.mark.parametrize("mode", ["interleave", "contiguous"])
    @pytest.mark.parametrize("n_jobs,n_shards", [(1, 1), (5, 2), (4, 4),
                                                 (3, 8), (10, 3)])
    def test_partition_covers_every_job_once(self, mode, n_jobs, n_shards):
        shards = shard_indices(n_jobs, n_shards, mode)
        assert all(shard for shard in shards)
        assert len(shards) == min(n_jobs, n_shards)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(n_jobs))

    def test_strategies(self):
        assert shard_indices(5, 2, "interleave") == [[0, 2, 4], [1, 3]]
        assert shard_indices(5, 2, "contiguous") == [[0, 1, 2], [3, 4]]

    def test_invalid_inputs(self):
        with pytest.raises(SpecError, match="at least one job"):
            shard_indices(0, 2)
        with pytest.raises(SpecError, match="unknown mode"):
            shard_indices(3, 2, "zigzag")


class TestRunStore:
    def test_miss_runs_and_persists(self, tmp_path):
        store = api.RunStore(tmp_path / "runs")
        spec = small_fleet(cells=2, seed=80)
        record = api.run(spec, store=store)
        assert record.cached is False
        assert api.spec_hash(spec) in store
        # Whole-run record plus one full-sample record per assay job.
        assert len(store) == 3
        for assay in spec.assays:
            assert api.spec_hash(assay) in store
        path = store.path_for(record.spec_hash)
        assert path.parent.name == record.spec_hash[:2]
        assert json.loads(path.read_text())["provenance"]["spec_hash"] \
            == record.spec_hash

    def test_hit_skips_the_engine(self, tmp_path, monkeypatch):
        store = api.RunStore(tmp_path)
        spec = small_fleet(cells=2, seed=81)
        first = api.run(spec, store=store)

        import repro.engine.scheduler as scheduler

        def boom(self, jobs):
            raise AssertionError("engine invoked on a cache hit")

        monkeypatch.setattr(scheduler.AssayScheduler, "run_iter", boom)
        again = api.run(spec, store=store)
        assert again.cached is True
        assert isinstance(again, api.StoredRunRecord)
        assert again.spec_hash == first.spec_hash
        assert again.spec == first.spec
        assert again.provenance()["seeds"] == [81, 82]
        assert again.to_dict()["result"] == first.to_dict()["result"]

    def test_store_accepts_path_and_string(self, tmp_path):
        spec = api.CalibrationSpec(target="glucose", points=4, seed=3)
        first = api.run(spec, store=tmp_path)
        again = api.run(spec, store=str(tmp_path))
        assert first.cached is False and again.cached is True
        assert again.seed == 3 and again.kind == "calibration"

    def test_different_specs_miss(self, tmp_path):
        store = api.RunStore(tmp_path)
        api.run(small_fleet(cells=1, seed=90), store=store)
        other = api.run(small_fleet(cells=1, seed=91), store=store)
        assert other.cached is False
        # Two whole-run records + one per-job record each.
        assert len(store) == 4

    def test_records_and_clear(self, tmp_path):
        store = api.RunStore(tmp_path)
        api.run(small_fleet(cells=1, seed=92), store=store)
        api.run(small_fleet(cells=1, seed=93), store=store)
        listed = list(store.records())
        assert len(listed) == 4  # 2 whole-run + 2 per-job records
        assert all(r.cached for r in listed)
        assert {r.kind for r in listed} == {"fleet", "assay"}
        assert list(store.hashes()) == sorted(r.spec_hash for r in listed)
        assert store.clear() == 4
        assert len(store) == 0

    def test_corrupt_record_quarantined_and_rerun(self, tmp_path):
        store = api.RunStore(tmp_path)
        record = api.run(small_fleet(cells=1, seed=94), store=store)
        path = store.path_for(record.spec_hash)
        path.write_text("{truncated")
        # Corruption degrades to recomputation: the record is moved to
        # quarantine, the lookup counts as a miss, and the run replays.
        with pytest.warns(RuntimeWarning, match="quarantined"):
            again = api.run(small_fleet(cells=1, seed=94), store=store)
        assert again.cached is False
        assert again.spec_hash == record.spec_hash
        assert (tmp_path / "quarantine" / path.name).exists()
        assert store.stats().quarantined == 1
        # The clean re-write serves the next run from the store again.
        third = api.run(small_fleet(cells=1, seed=94), store=store)
        assert third.cached is True

    def test_bad_hash_string_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="not a spec hash"):
            api.RunStore(tmp_path).get("nothex")

    def test_empty_store_listing(self, tmp_path):
        store = api.RunStore(tmp_path / "never-created")
        assert len(store) == 0
        assert list(store.records()) == []
        assert store.clear() == 0


class TestSweepSpec:
    def _sweep(self, **kwargs) -> api.SweepSpec:
        defaults = dict(
            name="study",
            base=api.AssaySpec(name="pt", seed=7,
                               chain=api.ChainSpec(seed=7),
                               protocol=api.PanelProtocolSpec(
                                   ca_dwell=CA_DWELL)),
            grid={"seed": [1, 2], "protocol.ca_dwell": [CA_DWELL]})
        defaults.update(kwargs)
        return api.SweepSpec(**defaults)

    def test_round_trips_like_other_kinds(self):
        sweep = self._sweep()
        payload = json.loads(json.dumps(sweep.to_dict()))
        back = api.spec_from_dict(payload)
        assert back == sweep
        assert api.spec_hash(back) == api.spec_hash(sweep)
        assert payload["kind"] == "sweep"
        assert payload["schema"] == api.SCHEMA_VERSION

    def test_compiles_sorted_axes_file_order_values(self):
        sweep = self._sweep(grid={"protocol.ca_dwell": [CA_DWELL, 12.0],
                                  "seed": [5, 3]})
        fleet = sweep.compile()
        assert len(sweep) == 4 and len(fleet) == 4
        # Axes sorted by path: ca_dwell is the outer loop, seed inner.
        combos = [(a.protocol.ca_dwell, a.seed) for a in fleet.assays]
        assert combos == [(CA_DWELL, 5), (CA_DWELL, 3),
                          (12.0, 5), (12.0, 3)]
        assert [a.name for a in fleet.assays] == \
            ["pt#0", "pt#1", "pt#2", "pt#3"]

    def test_grid_creates_nested_objects(self):
        sweep = self._sweep(
            grid={"cell.concentrations.glucose": [0.5, 2.0]})
        fleet = sweep.compile()
        assert fleet.assays[1].cell.concentrations == {"glucose": 2.0}

    def test_runs_through_backends_and_store(self, tmp_path):
        sweep = self._sweep()
        record = api.run(sweep)
        assert record.kind == "sweep"
        assert record.spec_hash == api.spec_hash(sweep)
        assert len(record.records) == 2
        assert record.seeds == (1, 2)
        sharded = api.run(sweep, backend=api.ProcessExecutor(workers=2))
        for a, b in zip(record.records, sharded.records):
            assert_records_identical(a, b)
        store = api.RunStore(tmp_path)
        assert api.run(sweep, store=store).cached is False
        assert api.run(sweep, store=store).cached is True

    def test_streams_compiled_grid(self):
        records = list(api.iter_results(self._sweep()))
        assert [r.job_name for r in records] == ["pt#0", "pt#1"]
        assert [r.seed for r in records] == [1, 2]

    def test_invalid_grids_rejected(self):
        with pytest.raises(SpecError, match="at least one grid axis"):
            self._sweep(grid={})
        with pytest.raises(SpecError, match="must be a list"):
            self._sweep(grid={"seed": 7})
        with pytest.raises(SpecError, match="at least one value"):
            self._sweep(grid={"seed": []})

    def test_bad_override_names_the_grid_point(self):
        sweep = self._sweep(grid={"protocol.ca_dwell": ["long"]})
        with pytest.raises(SpecError, match=r"grid point 0.*ca_dwell"):
            sweep.compile()

    def test_override_through_non_object_rejected(self):
        sweep = self._sweep(grid={"seed.sub": [1]})
        with pytest.raises(SpecError, match="non-object key"):
            sweep.compile()

    def test_v1_fleet_payload_still_loads(self):
        # A version-1 file: no execution block, schema 1 envelope.
        payload = small_fleet(cells=1, seed=99).to_dict()
        for node in [payload, *payload["assays"]]:
            node["schema"] = 1
        del payload["execution"]
        spec = api.spec_from_dict(json.loads(json.dumps(payload)))
        assert spec.execution == api.ExecutionSpec()
        assert len(spec) == 1


class TestEarlyTermination:
    """Closing a stream mid-fleet leaves no dangling scheduler state."""

    def test_closed_stream_then_fresh_run_matches_run_many(self):
        from repro.engine import AssayScheduler
        from repro.measurement import PanelProtocol

        spec = small_fleet(cells=3, seed=110)
        stream = api.iter_results(spec)
        first = next(stream)
        assert first.job_name == "cell00"
        stream.close()
        assert stream.gi_frame is None  # generator finished, locals freed

        # A fresh stream replays the whole fleet bit-identically to the
        # class-level scheduler over hand-built jobs.
        records = list(api.iter_results(spec))
        fleet = AssayScheduler(PanelProtocol(ca_dwell=CA_DWELL)).run_many(
            spec.build_jobs())
        assert tuple(r.job_name for r in records) == fleet.names
        for record, ref in zip(records, fleet.results):
            for name in ref.traces:
                assert np.array_equal(ref.traces[name].current,
                                      record.result.traces[name].current)

    def test_scheduler_run_iter_close_clears_plans(self):
        from repro.engine import AssayScheduler
        from repro.measurement import PanelProtocol

        spec = small_fleet(cells=2, seed=120)
        scheduler = AssayScheduler(PanelProtocol(ca_dwell=CA_DWELL))
        stream = scheduler.run_iter(spec.build_jobs())
        next(stream)
        stream.close()
        assert stream.gi_frame is None
        # Closing before the first item must also be clean.
        untouched = scheduler.run_iter(spec.build_jobs())
        untouched.close()
        assert untouched.gi_frame is None

    def test_partial_process_stream_shuts_down_pool(self):
        spec = small_fleet(cells=2, seed=130)
        stream = api.iter_results(spec,
                                  backend=api.ProcessExecutor(workers=2))
        first = next(stream)
        assert first.job_name == "cell00"
        stream.close()  # must not hang or leak the worker pool
        records = list(api.iter_results(spec))
        assert len(records) == 2


class TestPersistentPool:
    """Explicit executors keep their worker pool warm across runs."""

    def test_explicit_executor_spawns_one_pool_for_n_runs(
            self, monkeypatch):
        import repro.api.executors as executors

        spawns = []
        real = executors.ProcessPoolExecutor

        class Spy(real):
            def __init__(self, max_workers=None, **kwargs):
                spawns.append(max_workers)
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(executors, "ProcessPoolExecutor", Spy)
        spec = small_fleet(cells=2, seed=140)
        with api.ProcessExecutor(workers=2) as backend:
            for _ in range(3):
                records = list(api.iter_results(spec, backend=backend))
                assert [r.job_name for r in records] == ["cell00", "cell01"]
        assert spawns == [2]

    def test_pool_grows_when_a_run_needs_more_shards(self, monkeypatch):
        import repro.api.executors as executors

        spawns = []
        real = executors.ProcessPoolExecutor

        class Spy(real):
            def __init__(self, max_workers=None, **kwargs):
                spawns.append(max_workers)
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(executors, "ProcessPoolExecutor", Spy)
        with api.ProcessExecutor(workers=4) as backend:
            list(api.iter_results(small_fleet(cells=2, seed=150),
                                  backend=backend))
            # Bigger fleet: the 2-worker pool is retired and regrown.
            list(api.iter_results(small_fleet(cells=4, seed=150),
                                  backend=backend))
            # Smaller fleet again: the 4-worker pool still fits, reused.
            list(api.iter_results(small_fleet(cells=2, seed=150),
                                  backend=backend))
        assert spawns == [2, 4]

    def test_spec_built_executor_is_not_persistent(self):
        execution = api.ExecutionSpec(backend="process", workers=2)
        backend = execution.build()
        assert backend.persistent is False
        # And the persistent pool results stay bit-identical to inline.
        spec = small_fleet(cells=2, seed=160)
        ref = list(api.iter_results(spec, backend=api.InlineExecutor()))
        with api.ProcessExecutor(workers=2) as warm:
            first = list(api.iter_results(spec, backend=warm))
            second = list(api.iter_results(spec, backend=warm))
        for a, b, c in zip(ref, first, second):
            assert_records_identical(a, b)
            assert_records_identical(a, c)

    def test_abandoned_stream_resets_persistent_pool(self):
        spec = small_fleet(cells=2, seed=170)
        with api.ProcessExecutor(workers=2) as backend:
            stream = api.iter_results(spec, backend=backend)
            next(stream)
            stream.close()  # kills the leased pool...
            assert backend._pool is None
            # ...and the next run transparently spawns a fresh one.
            records = list(api.iter_results(spec, backend=backend))
            assert len(records) == 2
            assert backend._pool is not None
