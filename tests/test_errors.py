"""Exception hierarchy: every library error is a ReproError."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.UnitsError,
    errors.ChemistryError,
    errors.UnknownSpeciesError,
    errors.UnknownEnzymeError,
    errors.SimulationError,
    errors.ConvergenceError,
    errors.SensorError,
    errors.ElectronicsError,
    errors.SaturationError,
    errors.ProtocolError,
    errors.AnalysisError,
    errors.CalibrationError,
    errors.DesignError,
    errors.InfeasibleDesignError,
    errors.SpecError,
    errors.ExecutionError,
    errors.StoreError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_units_error_is_value_error():
    # Callers using plain ValueError handling still catch unit mistakes.
    assert issubclass(errors.UnitsError, ValueError)


def test_unknown_species_is_key_error():
    assert issubclass(errors.UnknownSpeciesError, KeyError)


def test_unknown_species_lists_known_names():
    err = errors.UnknownSpeciesError("glucse", ("glucose", "lactate"))
    assert "glucse" in str(err)
    assert "glucose" in str(err)


def test_infeasible_design_carries_violations():
    err = errors.InfeasibleDesignError("nothing fits", ("too big", "too slow"))
    assert err.violations == ("too big", "too slow")
    assert "too big" in str(err)


def test_calibration_error_is_analysis_error():
    assert issubclass(errors.CalibrationError, errors.AnalysisError)


def test_spec_error_is_design_and_value_error():
    assert issubclass(errors.SpecError, errors.DesignError)
    assert issubclass(errors.SpecError, ValueError)


def test_execution_error_is_not_a_spec_error():
    # A bad *run* (crashed worker, exhausted retries) must be
    # distinguishable from a bad *spec*: the former may succeed on
    # retry, the latter never will.
    assert issubclass(errors.ExecutionError, errors.ReproError)
    assert not issubclass(errors.ExecutionError, errors.SpecError)
    assert not issubclass(errors.ExecutionError, errors.StoreError)
