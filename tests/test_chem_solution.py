"""Chambers and injection schedules."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chem.solution import Chamber, Injection, InjectionSchedule
from repro.errors import ProtocolError


class TestInjection:
    def test_validates_species(self):
        with pytest.raises(Exception):
            Injection(0.0, "unobtainium", 1.0)

    def test_rejects_non_positive_step(self):
        with pytest.raises(Exception):
            Injection(0.0, "glucose", 0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(Exception):
            Injection(-1.0, "glucose", 1.0)


class TestSchedule:
    def test_single(self):
        schedule = InjectionSchedule.single(10.0, "glucose", 2.0)
        assert len(schedule.injections) == 1
        assert schedule.duration_hint == 10.0
        assert schedule.species_names() == ("glucose",)

    def test_staircase(self):
        schedule = InjectionSchedule.staircase("lactate", step=0.5,
                                               n_steps=4, interval=30.0)
        times = [inj.time for inj in schedule.injections]
        assert times == [0.0, 30.0, 60.0, 90.0]
        assert schedule.final_concentration("lactate") == pytest.approx(2.0)

    def test_unordered_rejected(self):
        with pytest.raises(ProtocolError, match="ordered"):
            InjectionSchedule((Injection(10.0, "glucose", 1.0),
                               Injection(5.0, "glucose", 1.0)))

    def test_events_between_half_open(self):
        schedule = InjectionSchedule.staircase("glucose", 1.0, 3, 10.0)
        # (0, 10] catches the injection at exactly t=10, not t=0.
        events = schedule.events_between(0.0, 10.0)
        assert len(events) == 1
        assert events[0].time == 10.0

    def test_empty_schedule(self):
        schedule = InjectionSchedule()
        assert schedule.duration_hint == 0.0
        assert schedule.species_names() == ()
        assert schedule.final_concentration("glucose") == 0.0

    @given(st.integers(min_value=1, max_value=10),
           st.floats(min_value=0.1, max_value=5.0))
    def test_final_concentration_sums_steps(self, n, step):
        schedule = InjectionSchedule.staircase("glucose", step, n, 1.0)
        assert schedule.final_concentration("glucose") == pytest.approx(
            n * step)


class TestChamber:
    def test_set_and_get(self):
        chamber = Chamber()
        chamber.set_bulk("glucose", 2.0)
        assert chamber.bulk("glucose") == 2.0
        assert chamber.bulk("lactate") == 0.0

    def test_inject_accumulates(self):
        chamber = Chamber()
        chamber.inject(Injection(0.0, "glucose", 1.0))
        chamber.inject(Injection(1.0, "glucose", 0.5))
        assert chamber.bulk("glucose") == pytest.approx(1.5)

    def test_species_present_sorted_nonzero(self):
        chamber = Chamber()
        chamber.set_bulk("lactate", 1.0)
        chamber.set_bulk("glucose", 1.0)
        chamber.set_bulk("glutamate", 0.0)
        assert chamber.species_present() == ("glucose", "lactate")

    def test_consume_clamps_at_zero(self):
        chamber = Chamber(volume=1e-6)
        chamber.set_bulk("glucose", 1.0)
        chamber.consume("glucose", moles=1.0)  # far more than present
        assert chamber.bulk("glucose") == 0.0

    def test_consume_bookkeeping(self):
        chamber = Chamber(volume=1e-6)
        chamber.set_bulk("glucose", 2.0)
        chamber.consume("glucose", moles=1e-6)  # 1 mol/m^3 worth
        assert chamber.bulk("glucose") == pytest.approx(1.0)

    def test_copy_is_independent(self):
        chamber = Chamber()
        chamber.set_bulk("glucose", 2.0)
        clone = chamber.copy()
        clone.set_bulk("glucose", 5.0)
        assert chamber.bulk("glucose") == 2.0

    def test_unknown_species_rejected(self):
        chamber = Chamber()
        with pytest.raises(Exception):
            chamber.set_bulk("unobtainium", 1.0)

    def test_negative_concentration_rejected(self):
        chamber = Chamber()
        with pytest.raises(Exception):
            chamber.set_bulk("glucose", -1.0)
