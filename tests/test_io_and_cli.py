"""Table rendering, export, and the command-line interface."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.analysis.calibration import CalibrationCurve, CalibrationPoint
from repro.api.specs import SCHEMA_VERSION
from repro.cli import main
from repro.io.export import (
    calibration_to_json,
    trace_to_csv,
    voltammogram_to_csv,
    write_json,
)
from repro.io.tables import format_quantity, render_table
from repro.measurement.trace import Trace, Voltammogram


class TestRenderTable:
    def test_basic_shape(self):
        text = render_table(["a", "b"], [["x", 1.0], ["y", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| a" in lines[1]
        assert len(lines) == 6

    def test_title(self):
        text = render_table(["a"], [["x"]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_none_rendered_as_dash(self):
        text = render_table(["a"], [[None]])
        assert "-" in text

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_numeric_right_aligned(self):
        text = render_table(["name", "val"],
                            [["x", "1"], ["long_name", "22"]])
        lines = text.splitlines()
        assert lines[3].endswith("  1 |")

    def test_format_quantity(self):
        assert format_quantity(None) == "-"
        assert format_quantity(0.0) == "0"
        assert format_quantity(1.23456, "uA") == "1.23 uA"


class TestExport:
    def _trace(self):
        times = np.arange(10) / 10.0
        return Trace(times=times, current=np.linspace(0, 1e-6, 10),
                     true_current=np.linspace(0, 1e-6, 10))

    def test_trace_csv(self, tmp_path):
        path = trace_to_csv(self._trace(), tmp_path / "t.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["time_s", "current_a", "true_current_a"]
        assert len(rows) == 11

    def test_voltammogram_csv(self, tmp_path):
        n = 8
        vg = Voltammogram(times=np.arange(n) / 10.0,
                          potentials=np.linspace(0, -0.5, n),
                          current=np.zeros(n),
                          sweep_sign=np.full(n, -1.0), scan_rate=0.02)
        path = voltammogram_to_csv(vg, tmp_path / "v.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0][1] == "potential_v"
        assert len(rows) == n + 1

    def test_calibration_json(self, tmp_path):
        curve = CalibrationCurve(
            [CalibrationPoint(1.0, 1e-7), CalibrationPoint(2.0, 2e-7),
             CalibrationPoint(3.0, 3e-7)],
            blank_mean=0.0, blank_std=1e-9)
        path = calibration_to_json(curve, tmp_path / "c.json")
        payload = json.loads(path.read_text())
        assert payload["blank_std"] == 1e-9
        assert len(payload["points"]) == 3

    def test_write_json_pretty(self, tmp_path):
        path = write_json({"b": 1, "a": 2}, tmp_path / "x.json")
        text = path.read_text()
        assert text.index('"a"') < text.index('"b"')  # sorted keys

    def test_write_json_atomic(self, tmp_path):
        # No staging temp files survive a successful write...
        path = write_json({"ok": 1}, tmp_path / "x.json")
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]
        # ...and a failed serialisation leaves the existing file intact
        # (the payload is staged to a temp file, never written in place).
        with pytest.raises(TypeError):
            write_json({"bad": object()}, path)
        assert json.loads(path.read_text()) == {"ok": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]


class TestCli:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "CYP2B4" in out
        assert "27.7" in out

    def test_panel_command(self, capsys):
        assert main(["panel", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "glucose" in out
        assert "assay time" in out

    def test_explore_command(self, capsys, tmp_path):
        from repro.core.spec import save_panel
        from repro.core.targets import PanelSpec, TargetSpec
        panel = PanelSpec(name="mini",
                          targets=(TargetSpec("glucose", 0.5, 4.0),))
        spec = save_panel(panel, tmp_path / "p.json")
        assert main(["explore", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "glucose", "--points", "6"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity" in out
        assert "linear range" in out

    def test_calibrate_cv_target_redirects(self, capsys):
        assert main(["calibrate", "cholesterol"]) == 1

    def test_selectivity_command(self, capsys):
        assert main(["selectivity"]) == 0
        out = capsys.readouterr().out
        assert "cross-response" in out
        assert "WE1" in out

    def test_selectivity_cathodic(self, capsys):
        assert main(["selectivity", "--potential", "-600"]) == 0
        out = capsys.readouterr().out
        assert "-600 mV" in out


class TestCliValidationAndExitCodes:
    """Argparse rejects bad numerics up front; ReproError exits 1."""

    @pytest.mark.parametrize("argv", [
        ["fleet", "--cells", "0"],
        ["fleet", "--cells", "-3"],
        ["fleet", "--cells", "two"],
        ["fleet", "--ca-dwell", "0"],
        ["fleet", "--ca-dwell", "-1.5"],
        ["calibrate", "glucose", "--points", "1"],
    ])
    def test_bad_numeric_arguments_fail_fast(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error
        assert "error" in capsys.readouterr().err

    def test_fleet_streams_results(self, capsys):
        assert main(["fleet", "--cells", "2", "--ca-dwell", "5"]) == 0
        out = capsys.readouterr().out
        assert "fleet spec" in out
        assert "done cell00" in out
        assert "done cell01" in out
        assert "throughput" in out

    def test_fleet_sequential_reference(self, capsys):
        assert main(["fleet", "--cells", "1", "--ca-dwell", "5",
                     "--sequential"]) == 0
        assert "sequential" in capsys.readouterr().out

    def test_panel_prints_provenance(self, capsys):
        assert main(["panel", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "[assay] spec" in out
        assert f"schema v{SCHEMA_VERSION}" in out

    def test_calibrate_unknown_target_exits_one(self, capsys):
        assert main(["calibrate", "unobtainium"]) == 1
        assert "error" in capsys.readouterr().err

    def test_explore_bad_spec_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["explore", "--spec", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_command_assay_spec(self, tmp_path, capsys):
        from repro import api
        spec_path = tmp_path / "assay.json"
        spec_path.write_text(json.dumps(api.AssaySpec(
            name="cli", seed=7,
            protocol=api.PanelProtocolSpec(ca_dwell=5.0)).to_dict()))
        record_path = tmp_path / "record.json"
        assert main(["run", str(spec_path), "--json",
                     str(record_path)]) == 0
        out = capsys.readouterr().out
        assert "[assay] spec" in out
        assert "assay time" in out
        payload = json.loads(record_path.read_text())
        assert payload["provenance"]["kind"] == "assay"

    def test_run_command_missing_key_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1, "kind": "calibration"}))
        assert main(["run", str(path)]) == 1
        err = capsys.readouterr().err
        assert "target" in err

    def test_fleet_process_backend(self, capsys):
        assert main(["fleet", "--cells", "2", "--ca-dwell", "5",
                     "--backend", "process", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "done cell00" in out
        assert "done cell01" in out
        assert "process backend" in out

    def test_workers_without_process_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--cells", "2", "--workers", "2"])

    def test_sequential_with_backend_rejected(self, capsys):
        with pytest.raises(SystemExit, match="sequential"):
            main(["fleet", "--cells", "2", "--sequential",
                  "--backend", "process"])

    def test_fleet_store_roundtrip_and_cache_command(self, tmp_path,
                                                     capsys):
        store = tmp_path / "runs"
        argv = ["fleet", "--cells", "2", "--ca-dwell", "5",
                "--store", str(store)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "stored" in first and "[cached]" not in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[cached]" in second and "cache hit" in second
        assert "hit  cell00" in second

        # The backend is an execution detail, not part of the workload:
        # the same fleet under --backend process hits the same record.
        assert main(argv + ["--backend", "process", "--workers", "2"]) == 0
        assert "[cached]" in capsys.readouterr().out

        # Whole-run record + one per-job record per assay.
        assert main(["cache", str(store)]) == 0
        listing = capsys.readouterr().out
        assert "3 record(s)" in listing and "fleet" in listing \
            and "assay" in listing
        assert main(["cache", str(store), "stats"]) == 0
        stats_out = capsys.readouterr().out
        assert "records   : 3" in stats_out and "hits" in stats_out
        assert main(["cache", str(store), "--clear"]) == 0
        assert "removed 3 record(s)" in capsys.readouterr().out
        assert main(["cache", str(store)]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_run_command_store_cache_hit(self, tmp_path, capsys):
        from repro import api
        spec_path = tmp_path / "assay.json"
        spec_path.write_text(json.dumps(api.AssaySpec(
            name="memo", seed=9,
            protocol=api.PanelProtocolSpec(ca_dwell=5.0)).to_dict()))
        store = tmp_path / "runs"
        assert main(["run", str(spec_path), "--store", str(store)]) == 0
        assert "cache hit" not in capsys.readouterr().out
        assert main(["run", str(spec_path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "[cached]" in out and "cache hit" in out

    def test_run_command_sweep_spec(self, tmp_path, capsys):
        from repro import api
        spec_path = tmp_path / "sweep.json"
        sweep = api.SweepSpec(
            base=api.AssaySpec(
                name="pt", protocol=api.PanelProtocolSpec(ca_dwell=5.0)),
            grid={"seed": [1, 2]})
        spec_path.write_text(json.dumps(sweep.to_dict()))
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "[sweep] spec" in out
        assert "2-assay fleet" in out
