"""Sec. II-B metrics, calibration curves, blanks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.baseline import blank_statistics, trace_baseline
from repro.analysis.calibration import (
    CalibrationCurve,
    CalibrationPoint,
    run_calibration,
)
from repro.analysis.metrics import (
    average_sensitivity,
    lod_concentration,
    lod_signal,
    max_nonlinearity,
    sample_throughput,
    selectivity_ratio,
    steady_state_response_time,
    transient_response_time,
)
from repro.data.catalog import bench_chain
from repro.errors import AnalysisError, CalibrationError
from repro.measurement.trace import Trace


def step_trace(t_event=10.0, baseline=0.0, level=1.0, tau=5.0,
               duration=100.0, fs=10.0, noise=0.0, rng=None):
    times = np.arange(int(duration * fs)) / fs
    values = np.where(times < t_event, baseline,
                      baseline + level * (1 - np.exp(-(times - t_event) / tau)))
    if noise and rng is not None:
        values = values + rng.normal(0.0, noise, times.size)
    return Trace(times=times, current=values)


class TestLod:
    def test_paper_equation_5(self):
        # LOD = Vb + 3*sigma_b.
        assert lod_signal(0.1, 0.02) == pytest.approx(0.16)

    def test_concentration_form(self):
        assert lod_concentration(1e-9, 1e-8) == pytest.approx(0.3)

    def test_sign_of_sensitivity_irrelevant(self):
        assert lod_concentration(1e-9, -1e-8) == pytest.approx(0.3)

    def test_zero_sensitivity_rejected(self):
        with pytest.raises(AnalysisError):
            lod_concentration(1e-9, 0.0)


class TestSensitivityAndLinearity:
    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=30)
    def test_linear_data_recovers_slope(self, slope, intercept):
        c = np.linspace(0.5, 4.0, 8)
        v = slope * c + intercept
        assert average_sensitivity(c, v) == pytest.approx(slope, rel=1e-9)
        assert max_nonlinearity(c, v) == pytest.approx(0.0, abs=1e-9)

    def test_saturating_data_shows_nonlinearity(self):
        c = np.linspace(0.5, 10.0, 12)
        v = c / (1.0 + c / 5.0)
        assert max_nonlinearity(c, v) > 0.0

    def test_needs_increasing_concentrations(self):
        with pytest.raises(AnalysisError):
            average_sensitivity(np.array([1.0, 1.0]), np.array([0.0, 1.0]))


class TestResponseTimes:
    def test_t90_of_exponential_step(self):
        # 90 % of (1 - exp(-t/tau)) is reached at t = tau*ln(10).
        trace = step_trace(t_event=10.0, tau=5.0)
        t90 = steady_state_response_time(trace, 10.0)
        assert t90 == pytest.approx(5.0 * np.log(10.0), rel=0.1)

    def test_transient_time_at_step_onset(self):
        trace = step_trace(t_event=10.0, tau=5.0)
        t_tr = transient_response_time(trace, 10.0)
        assert t_tr == pytest.approx(0.0, abs=0.3)

    def test_downward_steps_supported(self):
        trace = step_trace(t_event=10.0, level=-1.0, tau=5.0)
        t90 = steady_state_response_time(trace, 10.0)
        assert t90 == pytest.approx(5.0 * np.log(10.0), rel=0.1)

    def test_no_step_rejected(self):
        trace = step_trace(level=0.0)
        with pytest.raises(AnalysisError, match="no response step"):
            steady_state_response_time(trace, 10.0)

    def test_noise_does_not_fake_early_settling(self, rng):
        trace = step_trace(t_event=10.0, tau=5.0, noise=0.05, rng=rng)
        t90 = steady_state_response_time(trace, 10.0)
        # Must not report settling long before the true tau*ln(10) ~ 11.5 s.
        assert t90 > 5.0


class TestThroughputSelectivity:
    def test_throughput(self):
        # 30 s transient + 90 s recovery -> 30 samples/hour.
        assert sample_throughput(30.0, 90.0) == pytest.approx(30.0)

    def test_selectivity(self):
        assert selectivity_ratio(1.0, 0.01) == pytest.approx(100.0)
        assert selectivity_ratio(1.0, 0.0) == float("inf")
        with pytest.raises(AnalysisError):
            selectivity_ratio(0.0, 1.0)


class TestCalibrationCurve:
    def _curve(self, slope=1e-7, km=None, blank_std=1e-9):
        points = []
        for c in np.linspace(0.25, 6.0, 12):
            signal = slope * c if km is None else slope * c * km / (km + c)
            points.append(CalibrationPoint(concentration=float(c),
                                           signal=float(signal)))
        return CalibrationCurve(points, blank_mean=0.0, blank_std=blank_std)

    def test_sensitivity_of_linear_curve(self):
        curve = self._curve(slope=1e-7)
        assert curve.sensitivity() == pytest.approx(1e-7, rel=1e-9)

    def test_lod_from_blank(self):
        curve = self._curve(slope=1e-7, blank_std=1e-9)
        assert curve.limit_of_detection() == pytest.approx(0.03, rel=1e-6)

    def test_linear_range_of_linear_data_reaches_top(self):
        curve = self._curve(slope=1e-7)
        low, high = curve.linear_range()
        assert high == pytest.approx(6.0)

    def test_linear_range_capped_by_saturation(self):
        curve = self._curve(slope=1e-7, km=10.0)
        low, high = curve.linear_range()
        assert high < 6.0

    def test_inversion(self):
        curve = self._curve(slope=1e-7)
        c = curve.concentration_from_signal(3e-7)
        assert c == pytest.approx(3.0, rel=1e-6)

    def test_needs_three_points(self):
        with pytest.raises(CalibrationError):
            CalibrationCurve([CalibrationPoint(1.0, 1.0),
                              CalibrationPoint(2.0, 2.0)])

    def test_duplicate_concentrations_rejected(self):
        with pytest.raises(CalibrationError, match="duplicate"):
            CalibrationCurve([CalibrationPoint(1.0, 1.0),
                              CalibrationPoint(1.0, 1.1),
                              CalibrationPoint(2.0, 2.0)])

    def test_flat_curve_cannot_invert(self):
        points = [CalibrationPoint(float(c), 1.0) for c in (1.0, 2.0, 3.0)]
        curve = CalibrationCurve(points)
        with pytest.raises(CalibrationError):
            curve.concentration_from_signal(1.0)


class TestRunCalibration:
    def test_drives_callable_and_builds_curve(self, rng):
        def signal_at(c):
            return 2e-8 * c + rng.normal(0.0, 1e-10), 1e-10

        curve = run_calibration(signal_at, [0.5, 1.0, 2.0, 4.0])
        assert curve.sensitivity() == pytest.approx(2e-8, rel=0.05)
        assert curve.blank_std > 0.0

    def test_needs_enough_points(self):
        with pytest.raises(CalibrationError):
            run_calibration(lambda c: (c, 0.0), [1.0, 2.0])


class TestBaseline:
    def test_trace_baseline(self):
        trace = step_trace(t_event=10.0)
        mean, std = trace_baseline(trace, 10.0)
        assert mean == pytest.approx(0.0, abs=1e-12)

    def test_needs_pre_event_samples(self):
        trace = step_trace(t_event=0.1)
        with pytest.raises(AnalysisError, match="before"):
            trace_baseline(trace, 0.1)

    def test_blank_statistics_through_chain(self, glucose_cell, rng):
        glucose_cell.chamber.set_bulk("glucose", 0.0)
        vb, sb = blank_statistics(glucose_cell, "WE1", bench_chain(), 0.55,
                                  duration=3.0, repeats=3, rng=rng)
        assert sb > 0.0
        # The blank is leakage only — far below a 2 mM glucose signal.
        glucose_cell.chamber.set_bulk("glucose", 2.0)
        assert vb < 0.05 * glucose_cell.measured_current("WE1", 0.55)
