"""Quickstart: build a glucose biosensor and measure a sample.

This walks the shortest path through the library:

1. get the calibrated glucose-oxidase sensor from the catalog (the
   screen-printed CNT electrode behind Table III's 27.7 uA/(mM cm^2)),
2. hold it at the Table I potential (+550 mV vs Ag/AgCl) with a
   laboratory-grade acquisition chain,
3. inject glucose and watch the Fig. 3 transient,
4. calibrate and read an unknown sample back in millimolar.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_calibration, steady_state_response_time
from repro.chem import InjectionSchedule
from repro.data import bench_chain, reference_cell
from repro.io.tables import render_table
from repro.measurement import Chronoamperometry
from repro.units import sensitivity_to_paper, si_to_um_conc

E_APPLIED = 0.550  # Table I: glucose oxidase, +550 mV vs Ag/AgCl


def main() -> None:
    # --- 1. sensor and electronics -------------------------------------
    cell = reference_cell("glucose")
    chain = bench_chain(seed=7)
    we = cell.working_electrodes[0]
    print(f"sensor : {we.functionalization.probe.display_name} on "
          f"{we.material.display_name}, {we.area * 1e6:.2f} mm^2")
    print(f"chain  : {chain.describe()}")

    # --- 2. one injection, one transient (the Fig. 3 experiment) -------
    protocol = Chronoamperometry(
        e_setpoint=E_APPLIED, duration=90.0, sample_rate=5.0,
        injections=InjectionSchedule.single(10.0, "glucose", 2.0))
    result = protocol.run(cell, we.name, chain,
                          rng=np.random.default_rng(7))
    trace = result.trace.smoothed(21)
    t90 = steady_state_response_time(trace, 10.0)
    print(f"\ninjected 2 mM glucose at t=10 s:")
    print(f"  steady current : {trace.tail_mean() * 1e6:.2f} uA")
    print(f"  response time  : {t90:.0f} s to 90 % "
          f"(the paper's Fig. 3 shows ~30 s)")

    # --- 3. calibration ladder ------------------------------------------
    def signal_at(c: float) -> tuple[float, float]:
        cell.chamber.set_bulk("glucose", c)
        true = cell.measured_current(we.name, E_APPLIED)
        return chain.measure_constant(true, duration=5.0, we=we)

    curve = run_calibration(signal_at, list(np.linspace(0.5, 5.0, 8)))
    sensitivity = curve.sensitivity(c_low=0.5, c_high=4.0) / we.area
    low, high = curve.linear_range(nl_fraction=0.06)
    print("\ncalibration (paper Table III values in parentheses):")
    rows = [
        ["sensitivity",
         f"{sensitivity_to_paper(sensitivity):.1f} uA/(mM cm^2)", "(27.7)"],
        ["limit of detection",
         f"{si_to_um_conc(curve.limit_of_detection()):.0f} uM", "(575)"],
        ["linear range", f"{low:.2g} - {high:.2g} mM", "(0.5 - 4)"],
    ]
    print(render_table(["metric", "measured", "paper"], rows))

    # --- 4. read an unknown sample ---------------------------------------
    unknown = 2.7  # mM, pretend we do not know this
    cell.chamber.set_bulk("glucose", unknown)
    mean, _ = chain.measure_constant(
        cell.measured_current(we.name, E_APPLIED), duration=5.0, we=we)
    estimate = curve.concentration_from_signal(mean, c_low=low, c_high=high)
    print(f"\nunknown sample: estimated {estimate:.2f} mM "
          f"(true {unknown:.2f} mM)")


if __name__ == "__main__":
    main()
