"""Quickstart: calibrate a glucose biosensor through the spec front door.

This walks the shortest path through the library:

1. describe the run declaratively — a :mod:`repro.api`
   ``CalibrationSpec`` — and execute it with ``api.run``; the returned
   record carries the fitted curve *plus* provenance (spec hash, schema
   version, seed),
2. compare the measured metrics against the paper's Table III row
   (27.7 uA/(mM cm^2) for the screen-printed CNT glucose electrode),
3. drop below the front door (the documented escape hatch) to watch the
   Fig. 3 injection transient with ``Chronoamperometry`` directly,
4. read an unknown sample back in millimolar with the record's curve.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.analysis import steady_state_response_time
from repro.chem import InjectionSchedule
from repro.data import bench_chain, performance_record, reference_cell
from repro.io.tables import render_table
from repro.measurement import Chronoamperometry
from repro.units import sensitivity_to_paper, si_to_um_conc

E_APPLIED = 0.550  # Table I: glucose oxidase, +550 mV vs Ag/AgCl


def main() -> None:
    # --- 1. one declarative spec, one run --------------------------------
    spec = api.CalibrationSpec(target="glucose", points=8, seed=7)
    record = api.run(spec)
    print(f"ran spec {record.spec_hash[:12]} "
          f"(kind {record.kind!r}, schema v{record.schema_version}, "
          f"seed {record.seed})")

    # --- 2. measured metrics vs the paper --------------------------------
    curve = record.curve
    paper = performance_record("glucose")
    lo_p, hi_p = paper.linear_range
    sensitivity = curve.sensitivity(c_low=lo_p, c_high=hi_p) / record.we_area
    low, high = curve.linear_range(nl_fraction=0.06)
    print("\ncalibration (paper Table III values in parentheses):")
    rows = [
        ["sensitivity",
         f"{sensitivity_to_paper(sensitivity):.1f} uA/(mM cm^2)", "(27.7)"],
        ["limit of detection",
         f"{si_to_um_conc(curve.limit_of_detection()):.0f} uM", "(575)"],
        ["linear range", f"{low:.2g} - {high:.2g} mM", "(0.5 - 4)"],
    ]
    print(render_table(["metric", "measured", "paper"], rows))

    # --- 3. the escape hatch: one injection, one transient ---------------
    cell = reference_cell("glucose")
    chain = bench_chain(seed=7)
    we = cell.working_electrodes[0]
    protocol = Chronoamperometry(
        e_setpoint=E_APPLIED, duration=90.0, sample_rate=5.0,
        injections=InjectionSchedule.single(10.0, "glucose", 2.0))
    result = protocol.run(cell, we.name, chain,
                          rng=np.random.default_rng(7))
    trace = result.trace.smoothed(21)
    t90 = steady_state_response_time(trace, 10.0)
    print(f"\ninjected 2 mM glucose at t=10 s (class-level API):")
    print(f"  steady current : {trace.tail_mean() * 1e6:.2f} uA")
    print(f"  response time  : {t90:.0f} s to 90 % "
          f"(the paper's Fig. 3 shows ~30 s)")

    # --- 4. read an unknown sample ---------------------------------------
    unknown = 2.7  # mM, pretend we do not know this
    cell.chamber.set_bulk("glucose", unknown)
    mean, _ = chain.measure_constant(
        cell.measured_current(we.name, E_APPLIED), duration=5.0, we=we)
    estimate = curve.concentration_from_signal(mean, c_low=low, c_high=high)
    print(f"\nunknown sample: estimated {estimate:.2f} mM "
          f"(true {unknown:.2f} mM)")


if __name__ == "__main__":
    main()
