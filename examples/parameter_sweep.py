"""Parameter sweep: a dose-response grid through backends and the store.

The platform's front door separates *what* runs from *how* it runs.
This example shows all three execution axes on one parameter study:

1. describe a dose-response study declaratively — a :mod:`repro.api`
   ``SweepSpec`` whose grid crosses glucose loading with the
   acquisition seed, compiled into one fleet payload,
2. stream the grid through the pluggable backend API (the inline
   executor here; swap in ``api.ProcessExecutor(workers=4)`` — or
   ``"execution": {"backend": "process"}`` in the spec file — for
   multi-core sharding with bit-identical results),
3. memoise the whole study in a content-addressed ``RunStore`` and
   demonstrate that re-running the identical spec is a cache hit that
   never touches the engine.

Run:  python examples/parameter_sweep.py
"""

from __future__ import annotations

import tempfile

from repro import api
from repro.io.tables import render_table

GLUCOSE_LEVELS = (0.5, 2.0, 4.0)  # mM, spanning the paper's linear range
SEEDS = (7, 8)                    # two acquisition-noise replicates


def main() -> None:
    # --- 1. the study is one spec ----------------------------------------
    sweep = api.SweepSpec(
        name="glucose-dose-response",
        base=api.AssaySpec(name="dose",
                           protocol=api.PanelProtocolSpec(ca_dwell=6.0)),
        grid={"cell.concentrations.glucose": list(GLUCOSE_LEVELS),
              "seed": list(SEEDS)})
    print(f"sweep {api.spec_hash(sweep)[:12]}: {len(sweep)} grid points "
          f"({len(GLUCOSE_LEVELS)} glucose levels x {len(SEEDS)} seeds)")

    # --- 2. stream it through an execution backend -----------------------
    signals: dict[float, list[float]] = {level: [] for level in GLUCOSE_LEVELS}
    for record in api.iter_results(sweep, backend=api.InlineExecutor()):
        level = record.spec["cell"]["concentrations"]["glucose"]
        signals[level].append(record.result.readouts["glucose"].signal)
        print(f"  done {record.job_name}: glucose {level:g} mM, "
              f"seed {record.seed}")

    rows = []
    for level in GLUCOSE_LEVELS:
        mean = sum(signals[level]) / len(signals[level])
        spread = max(signals[level]) - min(signals[level])
        rows.append([f"{level:g}", f"{mean * 1e9:.1f}",
                     f"{spread * 1e9:.2f}"])
    print(render_table(["glucose mM", "mean signal nA", "spread nA"], rows,
                       title="dose response (grid means over seeds)"))

    # --- 3. memoise the study in a run store -----------------------------
    with tempfile.TemporaryDirectory() as root:
        store = api.RunStore(root)
        first = api.run(sweep, store=store)
        again = api.run(sweep, store=store)
        print(f"first run : cached={first.cached} "
              f"({first.wall_time_s:.2f} s, {len(first.records)} assays)")
        print(f"second run: cached={again.cached} — cache hit, the engine "
              f"never ran")
        assert again.spec_hash == first.spec_hash


if __name__ == "__main__":
    main()
