"""Parameter sweep: a dose-response grid memoised per grid point.

The platform's front door separates *what* runs from *how* it runs —
and, since the job-level pipeline, *whether it needs to run at all*.
This example shows all three axes on one parameter study:

1. describe a dose-response study declaratively — a :mod:`repro.api`
   ``SweepSpec`` whose grid crosses glucose loading with the
   acquisition seed, compiled into one fleet payload,
2. stream the grid through the pluggable backend API (the inline
   executor here; swap in ``api.ProcessExecutor(workers=4)`` — or
   ``"execution": {"backend": "process"}`` in the spec file — for
   multi-core sharding with bit-identical results) against a
   content-addressed ``RunStore``: every grid point is keyed by its
   ``JobKey`` (SHA-256 over the canonical assay payload), warm points
   are rehydrated from the store bit for bit, and only the misses
   touch the engine,
3. extend the study — one extra glucose level — and watch the
   pipeline simulate *only* the new grid points.

Run:  python examples/parameter_sweep.py

Set ``REPRO_SWEEP_STORE=dir`` to persist the store across invocations
(a second run reports every grid point cached and performs zero engine
solves — CI does exactly this); add ``REPRO_SWEEP_EXPECT_WARM=1`` to
make that claim a hard assertion.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import api
from repro.io.tables import render_table

GLUCOSE_LEVELS = (0.5, 2.0, 4.0)  # mM, spanning the paper's linear range
SEEDS = (7, 8)                    # two acquisition-noise replicates


def dose_response_sweep(levels=GLUCOSE_LEVELS) -> api.SweepSpec:
    return api.SweepSpec(
        name="glucose-dose-response",
        base=api.AssaySpec(name="dose",
                           protocol=api.PanelProtocolSpec(ca_dwell=6.0)),
        grid={"cell.concentrations.glucose": list(levels),
              "seed": list(SEEDS)})


def run_sweep(sweep: api.SweepSpec, store: api.RunStore):
    """Stream a sweep through the job-level pipeline; report cache use."""
    signals: dict[float, list[float]] = {}
    records = []
    start = time.perf_counter()
    for record in api.iter_results(sweep, store=store):
        level = record.spec["cell"]["concentrations"]["glucose"]
        signals.setdefault(level, []).append(
            record.result.readouts["glucose"].signal)
        mark = "hit " if record.cached else "done"
        print(f"  {mark} {record.job_name}: glucose {level:g} mM, "
              f"seed {record.seed}")
        records.append(record)
    elapsed = time.perf_counter() - start
    n_cached = sum(1 for r in records if r.cached)
    print(f"grid points cached: {n_cached}/{len(records)} "
          f"({elapsed:.2f} s)")
    return records, signals, n_cached


def main() -> None:
    # --- 1. the study is one spec ----------------------------------------
    sweep = dose_response_sweep()
    print(f"sweep {api.spec_hash(sweep)[:12]}: {len(sweep)} grid points "
          f"({len(GLUCOSE_LEVELS)} glucose levels x {len(SEEDS)} seeds)")

    store_root = os.environ.get("REPRO_SWEEP_STORE")
    scratch = None
    if store_root is None:
        scratch = tempfile.TemporaryDirectory()
        store_root = scratch.name
    store = api.RunStore(store_root)
    try:
        # --- 2. stream it through the job-level pipeline -----------------
        records, signals, n_cached = run_sweep(sweep, store)
        if os.environ.get("REPRO_SWEEP_EXPECT_WARM"):
            assert n_cached == len(records), (
                f"expected a fully warm sweep, got "
                f"{n_cached}/{len(records)} cached grid points")
            assert all(r.cached for r in records)
            print("warm re-run verified: every grid point served from "
                  "the store, zero engine solves")

        rows = []
        for level in GLUCOSE_LEVELS:
            mean = sum(signals[level]) / len(signals[level])
            spread = max(signals[level]) - min(signals[level])
            rows.append([f"{level:g}", f"{mean * 1e9:.1f}",
                         f"{spread * 1e9:.2f}"])
        print(render_table(
            ["glucose mM", "mean signal nA", "spread nA"], rows,
            title="dose response (grid means over seeds)"))

        # --- 3. extend the grid: only the new points simulate ------------
        extended = dose_response_sweep(levels=GLUCOSE_LEVELS + (8.0,))
        print(f"extended sweep: {len(extended)} grid points "
              f"({len(sweep)} shared with the study above)")
        ext_records, _, ext_cached = run_sweep(extended, store)
        assert ext_cached >= len(sweep), \
            "every shared grid point should be a store hit"

        stats = store.stats()
        print(f"store: {stats.records} record(s), {stats.bytes} bytes, "
              f"{stats.hits} hit(s) / {stats.misses} miss(es) lifetime "
              f"(hit rate {100 * stats.hit_rate:.0f}%)")
    finally:
        if scratch is not None:
            scratch.cleanup()


if __name__ == "__main__":
    main()
