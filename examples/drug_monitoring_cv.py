"""Therapeutic drug monitoring with cytochrome P450 voltammetry.

The paper's exogenous-compound story (Sec. I-A): patients metabolise
drugs at wildly different rates (20-50 % response variation), so
measuring blood drug levels lets a doctor personalise the dose.  This
example monitors a chemotherapy-adjacent two-drug regimen on a single
CYP2B4 electrode across three simulated patients, identifying each drug
by its reduction-peak position and quantifying it by peak height —
including the semi-derivative trick that separates overlapping waves.

Run:  python examples/drug_monitoring_cv.py
"""

from __future__ import annotations

import numpy as np

from repro.chem import Chamber
from repro.data import bench_chain, build_cytochrome
from repro.electronics import TriangleWaveform
from repro.io.tables import render_table
from repro.measurement import CyclicVoltammetry, assign_peaks, find_peaks
from repro.sensors import (
    Electrode,
    ElectrodeRole,
    ElectrochemicalCell,
    WorkingElectrode,
    with_cytochrome,
)
from repro.sensors.materials import get_material
from repro.units import v_to_mv

#: Simulated patients: (benzphetamine mM, aminopyrine mM).
PATIENTS = {
    "patient A (slow metaboliser)": (1.0, 5.0),
    "patient B (nominal)": (0.7, 3.0),
    "patient C (fast metaboliser)": (0.4, 1.5),
}

#: Scans averaged per measurement — benzphetamine's Table III sensitivity
#: is low (0.28 uA/(mM cm^2)), so single sweeps sit near the noise.
N_SCANS = 4


def make_cell() -> ElectrochemicalCell:
    probe = build_cytochrome("CYP2B4")
    we = WorkingElectrode(
        electrode=Electrode(name="WE", role=ElectrodeRole.WORKING,
                            material=get_material("rhodium_graphite"),
                            area=7.0e-6),
        functionalization=with_cytochrome(probe))
    return ElectrochemicalCell(
        chamber=Chamber(name="blood_sample"),
        working_electrodes=[we],
        reference=Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                            material=get_material("silver"), area=7.0e-6),
        counter=Electrode(name="CE", role=ElectrodeRole.COUNTER,
                          material=get_material("gold"), area=14.0e-6))


def main() -> None:
    probe = build_cytochrome("CYP2B4")
    candidates = {ch.substrate: ch.reduction_potential
                  for ch in probe.channels}
    print("CYP2B4 senses:",
          ", ".join(f"{t} @ {v_to_mv(e):+.0f} mV"
                    for t, e in candidates.items()))

    waveform = TriangleWaveform(e_start=0.0, e_vertex=-0.65,
                                scan_rate=0.020)
    protocol = CyclicVoltammetry(waveform, sample_rate=10.0)
    chain = bench_chain(seed=21)
    rng = np.random.default_rng(21)

    # Measurement = N averaged sweeps; semi-derivative peak heights.
    # Averaging beats the noise down by sqrt(N); semi-differentiation
    # turns each diffusion wave into a symmetric peak that returns to
    # baseline, so overlapping waves superpose cleanly — raw prominences
    # would shrink under a big neighbour.
    import numpy as _np
    from repro.measurement.trace import Voltammogram

    def measure(cell) -> Voltammogram:
        arrays = []
        base = None
        for _ in range(N_SCANS):
            base = protocol.run(cell, "WE", chain, rng=rng).voltammogram
            arrays.append(base.current)
        return Voltammogram(times=base.times, potentials=base.potentials,
                            current=_np.mean(arrays, axis=0),
                            sweep_sign=base.sweep_sign,
                            scan_rate=base.scan_rate)

    def drug_heights(voltammogram) -> dict[str, float]:
        peaks = find_peaks(voltammogram, cathodic=True, min_height=3e-9,
                           method="semiderivative", smooth_samples=9)
        match = assign_peaks(peaks, candidates, tolerance=0.035)
        return {t: p.height for t, p in match.matches.items()}

    calibration = {}
    for drug in candidates:
        heights = []
        for c in (0.5, 1.0):
            cell = make_cell()
            cell.chamber.set_bulk(drug, c)
            heights.append(drug_heights(measure(cell)).get(drug, 0.0))
        calibration[drug] = (heights[1] - heights[0]) / 0.5

    rows = []
    for label, (benz, amino) in PATIENTS.items():
        cell = make_cell()
        cell.chamber.set_bulk("benzphetamine", benz)
        cell.chamber.set_bulk("aminopyrine", amino)
        heights = drug_heights(measure(cell))
        estimates = {drug: heights.get(drug, 0.0) / calibration[drug]
                     for drug in candidates}
        rows.append([
            label,
            f"{estimates['benzphetamine']:.2f} ({benz:g})",
            f"{estimates['aminopyrine']:.2f} ({amino:g})",
            N_SCANS,
        ])
    print()
    print(render_table(
        ["sample", "benzphetamine mM (true)", "aminopyrine mM (true)",
         "scans averaged"],
        rows, title="two-drug monitoring on one CYP2B4 electrode "
                    "(20 mV/s CV, semi-derivative quantification)"))
    print("\nnote: benzphetamine runs near its 200 uM detection limit "
          "(Table III), so its estimate carries ~0.2 mM of uncertainty.")
    print("dose guidance: higher residual drug level => slower "
          "metabolism => consider reducing the next dose.")


if __name__ == "__main__":
    main()
