"""Design-space exploration: the paper's core proposition, end to end.

"The proliferation of electronic monitoring techniques would benefit from
a systematic design space exploration, in the search of the most
cost-effective solution (e.g., small, low energy consumption, low-cost)
to a given problem." (Sec. I.)

The example specifies the Sec. III six-target panel as requirements,
explores every platform the component library can express (probe choices,
sensor structures, readout sharing, noise strategies, nanostructuring,
electrode areas, scan rates), prints the Pareto front, materialises the
cheapest feasible platform, and runs a real sample through it — both
steps described as declarative :mod:`repro.api` specs and executed
through the ``run(spec)`` front door, so the chosen design's JSON
payload drops straight from the exploration record into the platform
run spec.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import api
from repro.core import (
    design_point_report,
    design_to_dict,
    exploration_report,
    paper_panel_spec,
)
from repro.data import PAPER_PANEL_MID_CONCENTRATIONS
from repro.errors import InfeasibleDesignError


def main() -> None:
    panel = paper_panel_spec()
    print(f"panel: {panel.name}  "
          f"({', '.join(panel.species_names())})")

    explore_record = api.run(api.ExploreSpec())
    result = explore_record.result
    if not result.n_feasible:
        raise InfeasibleDesignError("no feasible design in the space")
    print(f"\nexplored via spec {explore_record.spec_hash[:12]} "
          f"(schema v{explore_record.schema_version})")
    print(exploration_report(result))

    cheapest = result.best_by("cost")
    print()
    print("=== chosen design (cheapest feasible) ===")
    print(design_point_report(cheapest))

    platform_record = api.run(api.PlatformSpec(
        design=design_to_dict(cheapest.design),
        concentrations=dict(PAPER_PANEL_MID_CONCENTRATIONS), seed=31))
    print()
    print(platform_record.summary)

    run = platform_record.result
    print(f"\nassay complete in {run.assay_time:.0f} s; recovered "
          f"{len(run.readouts)}/{len(panel.targets)} targets:")
    for target, readout in sorted(run.readouts.items()):
        print(f"  {target:14s} {readout.signal * 1e9:8.1f} nA  "
              f"({readout.method}, {readout.we_name})")

    # Show the trade-off the paper argues for: what buying speed costs.
    fastest = result.best_by("time")
    print("\n=== the speed alternative ===")
    print(f"fastest feasible platform: {fastest.design.readout}, "
          f"{fastest.design.n_chains} chains")
    print(f"  assay {fastest.cost.assay_time_s:.0f} s vs "
          f"{cheapest.cost.assay_time_s:.0f} s, but power "
          f"{fastest.cost.power_w * 1e6:.0f} uW vs "
          f"{cheapest.cost.power_w * 1e6:.0f} uW and cost "
          f"{fastest.cost.fabrication_cost:.1f} vs "
          f"{cheapest.cost.fabrication_cost:.1f}")


if __name__ == "__main__":
    main()
