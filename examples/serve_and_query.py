"""Diagnostics-as-a-service: start a server, submit a study, stream it.

The paper's "integrated platform" is ultimately an instrument shared by
many clients — a *service*, not a script.  This example stands the
whole stack up in one process:

1. start a :class:`~repro.service.server.DiagnosticsServer` on a free
   port — asyncio HTTP/JSON over the :mod:`repro.api` pipeline, with a
   fair priority job queue, a shared warm run store, and usage
   accounting per API key,
2. submit a dose-response ``SweepSpec`` through the stdlib
   :class:`~repro.service.client.ServiceClient` and live-follow the
   run's NDJSON stream, one record per completed grid point,
3. submit the *same* study as a second client and watch every grid
   point come back as a store hit — one client's run warms the next
   client's cache,
4. read ``/v1/stats``: queue depth, store hit/miss, per-client usage.

Streamed records are bit-identical to inline ``api.run(spec)`` — the
service adds scheduling and transport, never physics.

Run:  python examples/serve_and_query.py
"""

from __future__ import annotations

import tempfile

from repro import api
from repro.service import DiagnosticsServer, ServeSpec, ServiceClient

GLUCOSE_LEVELS = (0.5, 2.0, 4.0)  # mM, spanning the paper's linear range


def dose_response_sweep() -> api.SweepSpec:
    return api.SweepSpec(
        name="glucose-dose-response",
        base=api.AssaySpec(name="dose",
                           protocol=api.PanelProtocolSpec(ca_dwell=6.0)),
        grid={"cell.concentrations.glucose": list(GLUCOSE_LEVELS)})


def follow(client: ServiceClient, job_id: str) -> int:
    """Stream a run's records, printing one line per grid point."""
    n = 0
    for line in client.stream(job_id, samples=False):
        if line.get("event") == "end":
            print(f"  stream ended: {line['status']}, "
                  f"{line['n_records']} record(s)")
            break
        n += 1
        provenance = line["provenance"]
        result = line["result"]
        glucose = line["spec"]["cell"]["concentrations"]["glucose"]
        mark = "hit " if provenance["cached"] else "done"
        print(f"  {mark} {result['job_name']}: glucose {glucose:g} mM, "
              f"signal {result['readouts']['glucose']['signal_a'] * 1e9:.2f} nA")
    return n


def main() -> None:
    sweep = dose_response_sweep()
    with tempfile.TemporaryDirectory() as root:
        spec = ServeSpec(backend="inline", dispatchers=2,
                         store=f"{root}/store")
        with DiagnosticsServer(spec) as server:
            print(f"diagnostics service listening on port {server.port}")

            alice = ServiceClient(server.port, api_key="alice")
            submitted = alice.submit(sweep)
            print(f"alice submitted the dose-response sweep: "
                  f"{submitted['id']} ({submitted['status']})")
            n_cold = follow(alice, submitted["id"])
            print(f"cold run streamed {n_cold} grid points")

            # A different client, the same study: every grid point is
            # already in the shared warm store.
            bob = ServiceClient(server.port, api_key="bob")
            again = bob.submit(sweep)
            print(f"bob submitted the same sweep: {again['id']}")
            status = bob.status(again["id"])
            print(f"bob's run status: {status['status']!r} "
                  f"(queued behind nothing, served from the warm store)")
            follow(bob, again["id"])

            stats = server_stats = bob.stats()
            store = server_stats["store"]
            print(f"store: {store['hits']} hit(s), "
                  f"{store['misses']} miss(es), "
                  f"{store['records']} record(s)")
            for key in ("alice", "bob"):
                usage = stats["usage"][key]
                print(f"usage[{key}]: {usage['runs']} run(s), "
                      f"{usage['jobs']} job(s), "
                      f"{usage['solve_steps']} solve step(s)")
            assert store["hits"] >= len(GLUCOSE_LEVELS), \
                "warm re-run must be served from the store"
    print("served, streamed, and warmed: ok")


if __name__ == "__main__":
    main()
