"""Long-term monitoring: drift, stabilising membranes, recalibration.

The paper motivates implantable biosensors for "long-term monitoring of
different compounds" (refs. [3]-[6]) and names polymer coatings as the
way "to provide long-term stability" (Sec. III).  This example runs a
simulated week of continuous glucose monitoring in three configurations:

1. a bare sensor with realistic baseline drift,
2. the same sensor behind a stabilising membrane (drift suppressed, some
   sensitivity traded away),
3. the bare sensor with a daily one-point recalibration.

It reports the worst-case concentration error of each strategy — the
practical question an implant designer asks.

Run:  python examples/implantable_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.chem import Chamber
from repro.data import build_oxidase, integrated_chain
from repro.electronics import ChoppingStrategy
from repro.io.tables import render_table
from repro.sensors import (
    EPOXY_STABILIZING,
    Electrode,
    ElectrodeRole,
    ElectrochemicalCell,
    WorkingElectrode,
    with_oxidase,
)
from repro.sensors.functionalization import CARBON_NANOTUBES
from repro.sensors.materials import get_material

E_APPLIED = 0.470
DAYS = 7.0
#: A diurnal glucose profile the implant must track, mM at hour-of-day.
#: Kept inside the sensor's 0.5-4 mM linear range (Table III); clinical
#: deployments would dilute interstitial fluid or extend the range with
#: a thicker membrane.
PROFILE_HOURS = np.array([0, 4, 7, 9, 12, 14, 19, 21, 24], dtype=float)
PROFILE_MM = np.array([2.2, 2.0, 2.1, 3.2, 2.5, 3.4, 2.8, 3.5, 2.2])
#: Sensor sensitivity loss per day from fouling (fractional).
FOULING_PER_DAY = 0.04


def make_cell(membrane) -> ElectrochemicalCell:
    we = WorkingElectrode(
        electrode=Electrode(name="WE", role=ElectrodeRole.WORKING,
                            material=get_material("gold"), area=1.0e-6),
        functionalization=with_oxidase(build_oxidase("glucose"),
                                       nanostructure=CARBON_NANOTUBES,
                                       membrane=membrane))
    return ElectrochemicalCell(
        chamber=Chamber(name="interstitial"),
        working_electrodes=[we],
        reference=Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                            material=get_material("silver"), area=1.0e-6),
        counter=Electrode(name="CE", role=ElectrodeRole.COUNTER,
                          material=get_material("gold"), area=2.0e-6))


def glucose_at(hours: float) -> float:
    return float(np.interp(hours % 24.0, PROFILE_HOURS, PROFILE_MM))


def simulate_week(membrane, recalibrate_daily: bool,
                  seed: int) -> np.ndarray:
    """Hourly concentration estimates over a week; returns |error| in mM."""
    cell = make_cell(membrane)
    we = cell.working_electrodes[0]
    # The 1 mm^2 electrode at millimolar glucose produces ~1 uA —
    # the oxidase (+/-10 uA @ 10 nA) class is the right fit here.
    chain = integrated_chain("oxidase", n_channels=1,
                             noise_strategy=ChoppingStrategy(), seed=seed)
    rng = np.random.default_rng(seed)
    suppression = 1.0 - we.functionalization.drift_suppression

    # Day-0 two-point calibration.
    def raw_signal(c: float, fouling: float) -> float:
        cell.chamber.set_bulk("glucose", c)
        true = cell.measured_current("WE", E_APPLIED) * fouling
        mean, _ = chain.measure_constant(true, duration=10.0, we=we,
                                         rng=rng)
        return mean

    s_low, s_high = raw_signal(1.0, 1.0), raw_signal(3.5, 1.0)
    slope = (s_high - s_low) / 2.5
    intercept = s_low - slope * 1.0

    errors = []
    for hour in np.arange(0.0, DAYS * 24.0, 1.0):
        day_fraction = hour / 24.0
        fouling = 1.0 - FOULING_PER_DAY * suppression * day_fraction
        truth = glucose_at(hour)
        signal = raw_signal(truth, fouling)
        if recalibrate_daily and hour % 24.0 == 8.0:
            # One fingerstick a day: re-anchor the slope at the current
            # truth (the classic CGM calibration procedure).
            slope = (signal - intercept) / truth
        estimate = (signal - intercept) / slope
        errors.append(abs(estimate - truth))
    return np.asarray(errors)


def main() -> None:
    scenarios = {
        "bare, no recalibration": (None, False),
        "stabilising membrane": (EPOXY_STABILIZING, False),
        "bare + daily recalibration": (None, True),
    }
    rows = []
    for label, (membrane, recal) in scenarios.items():
        errors = simulate_week(membrane, recal, seed=61)
        rows.append([
            label,
            f"{np.mean(errors):.2f}",
            f"{np.max(errors):.2f}",
            f"{np.mean(errors[-24:]):.2f}",
        ])
    print(render_table(
        ["strategy", "mean |err| mM", "worst |err| mM", "day-7 mean mM"],
        rows, title=f"one week of continuous glucose monitoring "
                    f"({FOULING_PER_DAY:.0%}/day fouling)"))
    print("\nthe membrane trades a little signal for most of the drift;")
    print("daily recalibration fixes gain drift at the cost of a daily "
          "reference measurement — implants combine both (refs. [3][6]).")


if __name__ == "__main__":
    main()
