"""The Fig. 4 experience: one chip, one sample, six answers.

Builds the paper's five-electrode silicon biointerface (glucose, lactate,
glutamate, CYP2B4 for benzphetamine + aminopyrine, CYP11A1 for
cholesterol), wets it with a mid-range sample, and runs the multiplexed
assay — described as one declarative :mod:`repro.api` spec and executed
through the platform's single ``run(spec)`` front door:
chronoamperometry on the oxidase electrodes, cyclic voltammetry with
peak assignment on the cytochrome electrodes, every dwell fused through
the batched engine.

Run:  python examples/multi_metabolite_panel.py
"""

from __future__ import annotations

from repro import api
from repro.data import PAPER_PANEL_MID_CONCENTRATIONS, paper_biointerface
from repro.io.tables import render_table
from repro.units import v_to_mv


def main() -> None:
    chip = paper_biointerface()
    print(chip.layout_summary())

    sample = dict(PAPER_PANEL_MID_CONCENTRATIONS)
    print("\nsample loading (mM):",
          ", ".join(f"{k}={v:g}" for k, v in sample.items()))

    spec = api.AssaySpec(
        name="fig4", seed=11,
        cell=api.CellSpec(concentrations=sample),
        chain=api.ChainSpec(readout="cyp_micro", n_channels=5, seed=11))
    record = api.run(spec)
    print(f"\nran spec {record.spec_hash[:12]} "
          f"(schema v{record.schema_version}, seed {record.seed}, "
          f"{record.engine.n_fused_dwells} dwells fused)")
    result = record.result

    rows = []
    for target, loading in sample.items():
        readout = result.readouts.get(target)
        if readout is None:
            rows.append([target, f"{loading:g}", "-", "NOT RECOVERED", "-"])
            continue
        peak = (f"{v_to_mv(readout.peak.potential):+.0f} mV"
                if readout.peak else "steady current")
        rows.append([target, f"{loading:g}", readout.we_name,
                     f"{readout.signal * 1e9:.1f} nA", peak])
    print()
    print(render_table(
        ["target", "loaded mM", "electrode", "signal", "identified by"],
        rows, title="multiplexed panel readout"))
    print(f"\nassay time: {result.assay_time:.0f} s "
          f"(sequential scan over 5 electrodes)")

    benz = result.readouts["benzphetamine"]
    amino = result.readouts["aminopyrine"]
    print(f"\nthe CYP2B4 electrode ({benz.we_name}) resolved two drugs on "
          f"one surface:")
    print(f"  benzphetamine peak at {v_to_mv(benz.peak.potential):+.0f} mV, "
          f"aminopyrine at {v_to_mv(amino.peak.potential):+.0f} mV "
          f"(paper: -250 / -400 mV)")


if __name__ == "__main__":
    main()
